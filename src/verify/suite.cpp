#include "rtv/verify/suite.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "rtv/base/parallel.hpp"

namespace rtv {

// ---------------------------------------------------------------------------
// Suite storage
// ---------------------------------------------------------------------------

const Module* Suite::own(Module m) {
  owned_modules_.push_back(std::move(m));
  return &owned_modules_.back();
}

const SafetyProperty* Suite::own(std::unique_ptr<SafetyProperty> p) {
  owned_properties_.push_back(std::move(p));
  return owned_properties_.back().get();
}

Obligation& Suite::add(std::string name) {
  obligations_.emplace_back();
  obligations_.back().name = std::move(name);
  return obligations_.back();
}

Obligation& Suite::add(std::string name, std::vector<const Module*> modules,
                       std::vector<const SafetyProperty*> properties) {
  Obligation& ob = add(std::move(name));
  ob.modules = std::move(modules);
  ob.properties = std::move(properties);
  return ob;
}

const char* to_string(SuiteMode mode) {
  return mode == SuiteMode::kPortfolio ? "portfolio" : "batch";
}

int exit_code(Verdict v) {
  switch (v) {
    case Verdict::kVerified:
      return 0;
    case Verdict::kViolated:
      return 1;
    case Verdict::kInconclusive:
      return 2;
  }
  return 2;
}

// ---------------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------------

namespace {

bool definitive(Verdict v) { return v != Verdict::kInconclusive; }

/// Per-thread CPU clock; 0 when the platform has no per-thread clock.
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return 0.0;
}

/// Shared race state of one obligation's portfolio.
struct ObligationControl {
  /// Handed to every run of the obligation; cancelled when a peer decides
  /// (portfolio) or when a suite-wide cancellation is observed.
  CancelToken token;
  /// Set once by the first definitive finisher (compare-exchange).
  std::atomic<bool> decided{false};
};

struct Task {
  const Obligation* obligation = nullptr;
  ObligationControl* control = nullptr;
  const Engine* engine = nullptr;
};

const Engine* find_engine_or_throw(std::string_view name) {
  const Engine* e = engine_registry().find(name);
  if (!e)
    throw std::invalid_argument("run_suite: unknown engine '" +
                                std::string(name) + "'");
  return e;
}

}  // namespace

SuiteReport run_suite(const Suite& suite, const SuiteOptions& options) {
  // Resolve the suite-wide engine selection up front so a typo fails fast,
  // before any thread spawns.
  std::vector<const Engine*> selected;
  if (options.engines.empty()) {
    if (options.mode == SuiteMode::kPortfolio) {
      selected = engine_registry().engines();
    } else {
      selected.push_back(find_engine_or_throw("refine"));
    }
  } else {
    for (const std::string& name : options.engines)
      selected.push_back(find_engine_or_throw(name));
  }

  // One control block per obligation, one task per obligation×engine, in
  // deterministic obligation-major order (records mirror this order no
  // matter which worker finishes first).
  std::deque<ObligationControl> controls;
  std::vector<Task> tasks;
  for (const Obligation& ob : suite.obligations()) {
    controls.emplace_back();
    ObligationControl& ctl = controls.back();
    if (options.mode == SuiteMode::kBatch && !ob.engine.empty()) {
      tasks.push_back({&ob, &ctl, find_engine_or_throw(ob.engine)});
      continue;
    }
    for (const Engine* e : selected) tasks.push_back({&ob, &ctl, e});
  }

  SuiteReport report;
  report.mode = options.mode;
  report.records.resize(tasks.size());

  // One global worker budget: obligation-level workers and the workers
  // sharding a single obligation's frontier share options.jobs, so
  // `--jobs N` is a true cap on concurrency.  With fewer tasks than
  // workers, the surplus goes to intra-obligation sharding.
  const std::size_t requested = resolve_jobs(options.jobs);
  const std::size_t jobs =
      std::min(requested, std::max<std::size_t>(tasks.size(), 1));
  const std::size_t intra_jobs = std::max<std::size_t>(1, requested / jobs);
  report.jobs = jobs;

  const CancelToken* suite_cancel = options.budget.cancel;
  const auto suite_aborted = [suite_cancel] {
    return suite_cancel && suite_cancel->cancelled();
  };

  std::mutex progress_mutex;

  const auto run_task = [&](const Task& task, SuiteRecord& rec) {
    const Obligation& ob = *task.obligation;
    ObligationControl& ctl = *task.control;
    rec.obligation = ob.name;
    rec.engine = std::string(task.engine->name());

    // A decided portfolio obligation (or an aborted suite) skips the run
    // outright: the loser is recorded as cancelled without exploring a
    // single state, so cancellation is observable even with one worker.
    if (suite_aborted() || ctl.token.cancelled()) {
      rec.result.verdict = Verdict::kInconclusive;
      rec.result.truncated_reason = stop_reason::kCancelled;
      return;
    }

    EngineRequest req;
    req.modules = ob.modules;
    req.properties = ob.properties;
    req.budget.max_states = ob.budget.max_states ? ob.budget.max_states
                                                 : options.budget.max_states;
    req.budget.max_seconds = ob.budget.max_seconds > 0.0
                                 ? ob.budget.max_seconds
                                 : options.budget.max_seconds;
    req.budget.cancel = &ctl.token;
    req.max_refinements = ob.max_refinements != 500 ? ob.max_refinements
                                                    : options.max_refinements;
    req.track_chokes = ob.track_chokes;
    req.jobs = intra_jobs;
    req.progress_interval = options.progress_interval;
    // The wrapper piggybacks suite-wide cancellation on the progress hook:
    // engines poll ctl.token every tick, so cancelling it here stops the
    // run within one progress interval of the external token firing.
    const CancelToken* ob_cancel = ob.budget.cancel;
    req.progress = [&, ob_cancel](const EngineProgress& p) {
      if ((suite_cancel && suite_cancel->cancelled()) ||
          (ob_cancel && ob_cancel->cancelled()))
        ctl.token.cancel();
      if (options.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(p);
      }
    };

    const double cpu0 = thread_cpu_seconds();
    try {
      rec.result = task.engine->run(req);
    } catch (const std::exception& e) {
      // An engine throw (compose() rejects contradictory delay bounds, a
      // worker ran out of memory, ...) must not escape a pool thread —
      // that would std::terminate the whole batch.  Record it against this
      // obligation and let the rest of the suite finish.
      rec.result = EngineResult{};
      rec.result.verdict = Verdict::kInconclusive;
      rec.result.truncated_reason = stop_reason::kEngineError;
      rec.result.message = e.what();
    }
    rec.cpu_seconds = thread_cpu_seconds() - cpu0;

    if (!definitive(rec.result.verdict)) return;
    if (options.mode == SuiteMode::kPortfolio) {
      bool expected = false;
      if (ctl.decided.compare_exchange_strong(expected, true)) {
        rec.winner = true;
        ctl.token.cancel();  // the verdict is in; stop the peers
      }
    } else {
      rec.winner = true;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      run_task(tasks[i], report.records[i]);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

// ---------------------------------------------------------------------------
// Roll-ups
// ---------------------------------------------------------------------------

std::vector<ObligationSummary> SuiteReport::summaries() const {
  std::vector<ObligationSummary> out;
  for (const SuiteRecord& rec : records) {
    ObligationSummary* s = nullptr;
    for (ObligationSummary& existing : out)
      if (existing.obligation == rec.obligation) {
        s = &existing;
        break;
      }
    if (!s) {
      out.emplace_back();
      s = &out.back();
      s->obligation = rec.obligation;
    }
    s->wall_seconds = std::max(s->wall_seconds, rec.result.seconds);
    // In batch mode several records of one obligation can be definitive;
    // a violation is concrete evidence and outranks a verified peer (the
    // two disagreeing at all is a cross-validation failure worth surfacing).
    if (rec.winner &&
        (s->winner.empty() || rec.result.verdict == Verdict::kViolated)) {
      if (s->verdict != Verdict::kViolated) {
        s->verdict = rec.result.verdict;
        s->winner = rec.engine;
      }
    }
  }
  return out;
}

Verdict SuiteReport::verdict_of(std::string_view obligation) const {
  for (const ObligationSummary& s : summaries())
    if (s.obligation == obligation) return s.verdict;
  return Verdict::kInconclusive;
}

Verdict SuiteReport::overall() const {
  Verdict out = Verdict::kVerified;
  for (const ObligationSummary& s : summaries()) {
    if (s.verdict == Verdict::kViolated) return Verdict::kViolated;
    if (s.verdict == Verdict::kInconclusive) out = Verdict::kInconclusive;
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

namespace {

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  json_escape_into(out, s);
  out += '"';
}

void append_double(std::string& out, double v) {
  // 17 significant digits: every finite double round-trips exactly.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string SuiteReport::to_json() const {
  std::string out;
  out += "{\n  \"schema\": ";
  append_string(out, kSchemaName);
  out += ",\n  \"schema_version\": " + std::to_string(kSchemaVersion);
  out += ",\n  \"mode\": ";
  append_string(out, to_string(mode));
  out += ",\n  \"jobs\": " + std::to_string(jobs);
  out += ",\n  \"wall_seconds\": ";
  append_double(out, wall_seconds);
  out += ",\n  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SuiteRecord& r = records[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\n      \"obligation\": ";
    append_string(out, r.obligation);
    out += ",\n      \"engine\": ";
    append_string(out, r.engine);
    out += ",\n      \"verdict\": ";
    append_string(out, to_string(r.result.verdict));
    out += ",\n      \"stop_reason\": ";
    append_string(out, r.result.truncated_reason);
    out += ",\n      \"states\": " + std::to_string(r.result.states_explored);
    out += ",\n      \"wall_seconds\": ";
    append_double(out, r.result.seconds);
    out += ",\n      \"cpu_seconds\": ";
    append_double(out, r.cpu_seconds);
    out += ",\n      \"winner\": ";
    out += r.winner ? "true" : "false";
    out += ",\n      \"message\": ";
    append_string(out, r.result.message);
    out += ",\n      \"trace\": [";
    for (std::size_t j = 0; j < r.result.trace_labels.size(); ++j) {
      if (j) out += ", ";
      append_string(out, r.result.trace_labels[j]);
    }
    out += "]\n    }";
  }
  out += records.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON parser — the minimal grammar the writer emits (objects, arrays,
// strings with escapes, numbers, booleans, null), strict about structure so
// a corrupted report fails loudly instead of round-tripping garbage.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("suite report JSON, offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // The writer only emits \u00XX for control characters; decode
          // the Latin-1 range as UTF-8 and reject the rest.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& obj, std::string_view key,
                         JsonValue::Kind kind, const char* what) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != kind)
    throw std::runtime_error(std::string("suite report JSON: missing or "
                                         "mistyped field '") +
                             std::string(key) + "' (" + what + ")");
  return *v;
}

Verdict verdict_from_string(const std::string& s) {
  if (s == "VERIFIED") return Verdict::kVerified;
  if (s == "VIOLATED") return Verdict::kViolated;
  if (s == "INCONCLUSIVE") return Verdict::kInconclusive;
  throw std::runtime_error("suite report JSON: unknown verdict '" + s + "'");
}

}  // namespace

SuiteReport parse_suite_report(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.kind != JsonValue::Kind::kObject)
    throw std::runtime_error("suite report JSON: root is not an object");

  using Kind = JsonValue::Kind;
  if (require(root, "schema", Kind::kString, "schema tag").string !=
      SuiteReport::kSchemaName)
    throw std::runtime_error("suite report JSON: wrong schema tag");
  const int version = static_cast<int>(
      require(root, "schema_version", Kind::kNumber, "schema version").number);
  if (version < 1 || version > SuiteReport::kSchemaVersion)
    throw std::runtime_error("suite report JSON: unsupported schema version " +
                             std::to_string(version));

  SuiteReport report;
  const std::string& mode =
      require(root, "mode", Kind::kString, "mode").string;
  if (mode == "portfolio")
    report.mode = SuiteMode::kPortfolio;
  else if (mode == "batch")
    report.mode = SuiteMode::kBatch;
  else
    throw std::runtime_error("suite report JSON: unknown mode '" + mode + "'");
  report.jobs = static_cast<std::size_t>(
      require(root, "jobs", Kind::kNumber, "jobs").number);
  report.wall_seconds =
      require(root, "wall_seconds", Kind::kNumber, "wall seconds").number;

  for (const JsonValue& rec :
       require(root, "records", Kind::kArray, "records").array) {
    if (rec.kind != Kind::kObject)
      throw std::runtime_error("suite report JSON: record is not an object");
    SuiteRecord out;
    out.obligation =
        require(rec, "obligation", Kind::kString, "obligation name").string;
    out.engine = require(rec, "engine", Kind::kString, "engine name").string;
    out.result.verdict = verdict_from_string(
        require(rec, "verdict", Kind::kString, "verdict").string);
    out.result.truncated_reason =
        require(rec, "stop_reason", Kind::kString, "stop reason").string;
    out.result.states_explored = static_cast<std::size_t>(
        require(rec, "states", Kind::kNumber, "states").number);
    out.result.seconds =
        require(rec, "wall_seconds", Kind::kNumber, "wall seconds").number;
    out.cpu_seconds =
        require(rec, "cpu_seconds", Kind::kNumber, "cpu seconds").number;
    out.winner = require(rec, "winner", Kind::kBool, "winner flag").boolean;
    out.result.message =
        require(rec, "message", Kind::kString, "message").string;
    for (const JsonValue& label :
         require(rec, "trace", Kind::kArray, "trace labels").array) {
      if (label.kind != Kind::kString)
        throw std::runtime_error(
            "suite report JSON: trace label is not a string");
      out.result.trace_labels.push_back(label.string);
    }
    report.records.push_back(std::move(out));
  }
  return report;
}

}  // namespace rtv
