#include "rtv/verify/property.hpp"

#include <algorithm>
#include <sstream>

namespace rtv {

InvariantProperty::InvariantProperty(std::string name,
                                     std::vector<Literal> forbidden)
    : name_(std::move(name)), forbidden_(std::move(forbidden)) {}

std::optional<std::string> InvariantProperty::check_state(
    const PropertyContext& ctx) const {
  if (!ctx.ts.has_valuations()) return std::nullopt;
  const BitVec& v = ctx.ts.valuation(ctx.state);
  for (const Literal& lit : forbidden_) {
    const std::size_t idx = ctx.ts.signal_index(lit.signal);
    if (idx == static_cast<std::size_t>(-1)) return std::nullopt;  // unknown signal
    if (v.test(idx) != lit.value) return std::nullopt;
  }
  std::ostringstream os;
  os << "invariant '" << name_ << "' violated: ";
  for (std::size_t i = 0; i < forbidden_.size(); ++i) {
    if (i) os << " & ";
    os << (forbidden_[i].value ? "" : "!") << forbidden_[i].signal;
  }
  return os.str();
}

std::optional<std::string> DeadlockFreedom::check_state(
    const PropertyContext& ctx) const {
  if (ctx.raw_enabled.empty()) return std::string("deadlock");
  return std::nullopt;
}

PersistencyProperty::PersistencyProperty(std::vector<std::string> exempt)
    : exempt_(std::move(exempt)) {
  std::sort(exempt_.begin(), exempt_.end());
}

std::optional<std::string> PersistencyProperty::check_event(
    const PropertyContext& ctx, EventId event, StateId successor,
    const std::vector<EventId>& successor_enabled) const {
  (void)successor;
  for (EventId x : ctx.raw_enabled) {
    if (x == event) continue;
    if (ctx.ts.event(x).kind == EventKind::kInput) continue;
    if (std::binary_search(exempt_.begin(), exempt_.end(), ctx.ts.label(x)))
      continue;
    if (!std::binary_search(successor_enabled.begin(), successor_enabled.end(),
                            x)) {
      return "persistency violated: " + ctx.ts.label(x) + " disabled by " +
             ctx.ts.label(event);
    }
  }
  return std::nullopt;
}

}  // namespace rtv
