#include "rtv/ipcmos/pipeline.hpp"

namespace rtv::ipcmos {

Module make_stage(int k, const PipelineTiming& t) {
  return stage_module("I" + std::to_string(k), linear_channels(k), t.stage);
}

Module make_in_env(const PipelineTiming& t) {
  return stg_library::in_module("V1", "A1", t.env);
}

Module make_out_env(int n_stages, const PipelineTiming& t) {
  const std::string b = std::to_string(n_stages + 1);
  return stg_library::out_module("V" + b, "A" + b, t.env);
}

Module make_ain(int boundary) {
  const std::string b = std::to_string(boundary);
  return stg_library::ain_module("V" + b, "A" + b);
}

Module make_aout(int boundary) {
  const std::string b = std::to_string(boundary);
  return stg_library::aout_module("V" + b, "A" + b);
}

ModuleSet flat_pipeline(int n_stages, const PipelineTiming& t) {
  ModuleSet set;
  set.add(make_in_env(t));
  for (int k = 1; k <= n_stages; ++k) set.add(make_stage(k, t));
  set.add(make_out_env(n_stages, t));
  return set;
}

}  // namespace rtv::ipcmos
