#include "rtv/ipcmos/stage.hpp"

#include <cassert>

#include "rtv/circuit/elaborate.hpp"

namespace rtv::ipcmos {

Netlist make_stage_netlist(const std::string& name, const StageChannels& ch,
                           const StageTiming& t) {
  assert(!ch.valid_in.empty());
  assert(!ch.valid_out.empty());
  assert(ch.valid_out.size() == ch.ack_in.size());
  Netlist nl(name);
  ExprPool& xp = nl.exprs();

  // ---- interface nodes ----------------------------------------------------
  // Initially the pipeline is empty: VALID high, CLKE high, ACK low.
  std::vector<NodeId> vin;
  for (const std::string& v : ch.valid_in)
    vin.push_back(nl.add_node(v, true, /*input=*/true));
  const NodeId ack = nl.add_node(ch.ack_out, false, false, /*boundary=*/true);
  std::vector<NodeId> vout, ain;
  for (const std::string& v : ch.valid_out)
    vout.push_back(nl.add_node(v, true, false, /*boundary=*/true));
  for (const std::string& a : ch.ack_in)
    ain.push_back(nl.add_node(a, false, /*input=*/true));

  // ---- strobe switches (7 transistors per input) --------------------------
  std::vector<NodeId> vint, y, z;
  for (std::size_t i = 0; i < vin.size(); ++i) {
    const std::string sfx =
        vin.size() == 1 ? std::string() : "_" + std::to_string(i);
    const NodeId vi = nl.add_node(name + ".Vint" + sfx, true);
    const NodeId zi = nl.add_node(name + ".Z" + sfx, false);
    const NodeId yi = nl.add_node(name + ".Y" + sfx, true);
    vint.push_back(vi);
    z.push_back(zi);
    y.push_back(yi);

    // Vint: discharged via the pass transistor while Y holds and the input
    // VALID is low; precharged by the CLKE p-transistor; weak keeper
    // (the "(weak)" transistor of Fig. 11) while Z is low.
    nl.pull_down(vi, xp.conj2(xp.lit(yi, true), xp.lit(vin[i], false)),
                 t.vint_fall, 2);
    // (CLKE pull-up added below once CLKE exists.)

    // Z: inverter of Vint.
    nl.pull_up(zi, xp.lit(vi, false), t.z_rise, 1);
    nl.pull_down(zi, xp.lit(vi, true), t.z_fall, 1);

    // Y: En(Y+) = !Y & !Z (p-transistor on Z); En(Y-) = Y & ACK.
    nl.pull_up(yi, xp.lit(zi, false), t.y_rise, 1);
    nl.pull_down(yi, xp.lit(ack, true), t.y_fall, 1);
  }

  // ---- reset switches (4 transistors per output) ---------------------------
  // R_j: cleared while the delayed strobe D is low and the receiver has not
  // acknowledged yet; set by the receiver's ACK.
  std::vector<NodeId> r;
  const NodeId d = nl.add_node(name + ".D", true);
  for (std::size_t j = 0; j < vout.size(); ++j) {
    const std::string sfx =
        vout.size() == 1 ? std::string() : "_" + std::to_string(j);
    const NodeId rj = nl.add_node(name + ".R" + sfx, true);
    r.push_back(rj);
    // (guard on CLKE added below once CLKE exists)
    nl.pull_up(rj, xp.lit(ain[j], true), t.r_rise, 1);
  }

  // ---- strobe core ---------------------------------------------------------
  const NodeId x = nl.add_node(name + ".X", false);
  const NodeId a2 = nl.add_node(name + ".A2", false);
  const NodeId clke = nl.add_node(name + ".CLKE", true);

  // X+: all sense lines discharged (all inputs valid) and all reset
  // switches ready.  X-: once the sense lines are precharged again.
  {
    std::vector<Expr> up;
    for (NodeId vi : vint) up.push_back(xp.lit(vi, false));
    for (NodeId rj : r) up.push_back(xp.lit(rj, true));
    nl.pull_up(x, xp.conj(std::move(up)), t.x_rise, 3);
    std::vector<Expr> down;
    for (NodeId vi : vint) down.push_back(xp.lit(vi, true));
    nl.pull_down(x, xp.disj(std::move(down)), t.x_fall, 1);
  }

  // ACK: buffered pulse.  Rises with X (big driver), self-resets through
  // the pulse stage A2.
  nl.pull_up(ack, xp.conj2(xp.lit(x, true), xp.lit(a2, false)), t.ack_rise, 4);
  nl.pull_down(ack, xp.lit(a2, true), t.ack_fall, 4);
  nl.pull_up(a2, xp.lit(ack, true), t.a2_rise, 1);
  nl.pull_down(a2, xp.conj2(xp.lit(ack, false), xp.lit(x, false)), t.a2_fall, 2);

  // CLKE: inverted follower of ACK (the local clock pulse).
  nl.pull_down(clke, xp.lit(ack, true), t.clke_fall, 2);
  nl.pull_up(clke, xp.lit(ack, false), t.clke_rise, 2);

  // Reset switches: cleared during the CLKE pulse (data launched), set
  // again by the receiver's ACK.
  for (std::size_t j = 0; j < r.size(); ++j) {
    nl.pull_down(r[j], xp.conj2(xp.lit(clke, false), xp.lit(ain[j], false)),
                 t.r_fall, 2);
  }

  // Vint precharge by CLKE plus the weak keeper.
  for (std::size_t i = 0; i < vint.size(); ++i) {
    nl.pull_up(vint[i], xp.lit(clke, false), t.vint_rise, 0);
    nl.pull_up(vint[i], xp.lit(z[i], false), t.vint_rise, 1, /*weak=*/true);
  }

  // Delay line D matching the worst-case logic delay, and the valid
  // modules driving the output VALID lines.
  nl.pull_down(d, xp.lit(clke, false), t.d_fall, 1);
  nl.pull_up(d, xp.lit(clke, true), t.d_rise, 1);
  // Valid module: VALID_out falls when the delayed strobe fires and is
  // raised only after the receiver's acknowledge has been recorded by the
  // reset switch (the partial handshake of Fig. 6).
  for (std::size_t j = 0; j < vout.size(); ++j) {
    nl.pull_down(vout[j], xp.lit(d, false), t.valid_fall, 1);
    nl.pull_up(vout[j], xp.conj2(xp.lit(r[j], true), xp.lit(d, true)),
               t.valid_rise, 0);
  }

  return nl;
}

Module stage_module(const std::string& name, const StageChannels& ch,
                    const StageTiming& timing) {
  return elaborate(make_stage_netlist(name, ch, timing));
}

StageChannels linear_channels(int k) {
  StageChannels ch;
  ch.valid_in = {"V" + std::to_string(k)};
  ch.ack_out = "A" + std::to_string(k);
  ch.valid_out = {"V" + std::to_string(k + 1)};
  ch.ack_in = {"A" + std::to_string(k + 1)};
  return ch;
}

int expected_transistors(int n_inputs, int n_outputs) {
  return 21 + 7 * n_inputs + 4 * n_outputs;
}

}  // namespace rtv::ipcmos
