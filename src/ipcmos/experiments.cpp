#include "rtv/ipcmos/experiments.hpp"

#include "rtv/circuit/invariants.hpp"
#include "rtv/verify/containment.hpp"

namespace rtv::ipcmos {

namespace {

/// Owning property bundle.
struct PropertySet {
  std::vector<std::unique_ptr<SafetyProperty>> owned;
  std::vector<const SafetyProperty*> ptrs;

  void add(std::unique_ptr<SafetyProperty> p) {
    owned.push_back(std::move(p));
    ptrs.push_back(owned.back().get());
  }
};

/// Deadlock-freedom, persistency and the short-circuit invariants of a
/// transistor-level stage (Section 5.1).
PropertySet stage_properties(int stage_index, const PipelineTiming& t) {
  PropertySet ps;
  ps.add(std::make_unique<DeadlockFreedom>());
  ps.add(std::make_unique<PersistencyProperty>());
  const Netlist nl =
      make_stage_netlist("I" + std::to_string(stage_index),
                         linear_channels(stage_index), t.stage);
  for (auto& p : short_circuit_properties(nl)) ps.add(std::move(p));
  return ps;
}

}  // namespace

VerificationResult experiment1(const ExperimentConfig& cfg) {
  // A_in || A_out |= S: the abstractions at boundary 1, checked for
  // deadlock-freedom; protocol conformance is structural (chokes).
  const Module ain = make_ain(1);
  const Module aout = make_aout(1);
  PropertySet ps;
  ps.add(std::make_unique<DeadlockFreedom>());
  return verify_modules({&ain, &aout}, ps.ptrs, cfg.verify);
}

VerificationResult experiment2(const ExperimentConfig& cfg) {
  // Guarantee A_out:  A_in || I || OUT  <=  A_out at boundary 1
  // (Fig. 9(a); the checked output is ACK = A1).
  const Module ain = make_ain(1);
  const Module stage = make_stage(1, cfg.timing);
  const Module out = make_out_env(1, cfg.timing);
  const Module aout = make_aout(1);
  PropertySet ps = stage_properties(1, cfg.timing);
  return check_containment({&ain, &stage, &out}, aout, ps.ptrs, cfg.verify);
}

VerificationResult experiment3(const ExperimentConfig& cfg) {
  // Guarantee A_in (induction base):  IN || I || A_out  <=  A_in at
  // boundary 2 (Fig. 9(b); the checked output is VALID = V2).
  const Module in = make_in_env(cfg.timing);
  const Module stage = make_stage(1, cfg.timing);
  const Module aout = make_aout(2);
  const Module ain = make_ain(2);
  PropertySet ps = stage_properties(1, cfg.timing);
  return check_containment({&in, &stage, &aout}, ain, ps.ptrs, cfg.verify);
}

VerificationResult experiment4(const ExperimentConfig& cfg) {
  // A_in is a behavioural fixed point:  A_in || I || A_out  <=  A_in at
  // boundary 2 (Fig. 9(c)) — the induction step for any pipeline length.
  const Module ain1 = make_ain(1);
  const Module stage = make_stage(1, cfg.timing);
  const Module aout = make_aout(2);
  const Module ain2 = make_ain(2);
  PropertySet ps = stage_properties(1, cfg.timing);
  return check_containment({&ain1, &stage, &aout}, ain2, ps.ptrs, cfg.verify);
}

VerificationResult experiment5(const ExperimentConfig& cfg) {
  // 1-stage pipeline with pulse-driven environments at both ends:
  // IN || I || OUT |= S (Section 5).
  return flat_experiment(1, cfg);
}

VerificationResult flat_experiment(int n_stages, const ExperimentConfig& cfg) {
  const ModuleSet set = flat_pipeline(n_stages, cfg.timing);
  PropertySet ps;
  ps.add(std::make_unique<DeadlockFreedom>());
  ps.add(std::make_unique<PersistencyProperty>());
  for (int k = 1; k <= n_stages; ++k) {
    const Netlist nl = make_stage_netlist("I" + std::to_string(k),
                                          linear_channels(k), cfg.timing.stage);
    for (auto& p : short_circuit_properties(nl)) ps.add(std::move(p));
  }
  return verify_modules(set.ptrs, ps.ptrs, cfg.verify);
}

Suite table1_suite(const ExperimentConfig& cfg) {
  Suite suite;
  // Transfer an owning property bundle into the suite, returning the views
  // an obligation composes over.
  const auto own_props = [&suite](PropertySet ps) {
    std::vector<const SafetyProperty*> ptrs;
    ptrs.reserve(ps.owned.size());
    for (auto& p : ps.owned) ptrs.push_back(suite.own(std::move(p)));
    return ptrs;
  };
  // Containment obligations run the abstraction as a passive monitor, the
  // same construction as check_containment().
  const auto monitor_of = [&suite](Module abstraction) {
    const std::string name = abstraction.name() + "'";
    return suite.own(abstraction.as_monitor(name));
  };
  const auto configure = [&cfg](Obligation& ob) {
    ob.max_refinements = cfg.verify.max_refinements;
    // Budget fields left at zero inherit the suite-wide SuiteOptions
    // budget (e.g. the CLI's --max-states/--timeout); only a config that
    // deviates from the VerifyOptions defaults pins a per-obligation
    // override.  The engines' native 2M-state default already matches
    // VerifyOptions'.
    if (cfg.verify.max_states != VerifyOptions{}.max_states)
      ob.budget.max_states = cfg.verify.max_states;
    ob.budget.max_seconds = cfg.verify.max_seconds;
  };

  {
    // 1. A_in || A_out |= S at boundary 1 (deadlock-freedom; protocol
    // conformance is structural).
    PropertySet ps;
    ps.add(std::make_unique<DeadlockFreedom>());
    configure(suite.add("1. Ain || Aout |= S",
                        {suite.own(make_ain(1)), suite.own(make_aout(1))},
                        own_props(std::move(ps))));
  }
  {
    // 2. Guarantee A_out:  A_in || I || OUT  <=  A_out at boundary 1.
    configure(suite.add(
        "2. Ain || I || OUT <= Aout",
        {suite.own(make_ain(1)), suite.own(make_stage(1, cfg.timing)),
         suite.own(make_out_env(1, cfg.timing)), monitor_of(make_aout(1))},
        own_props(stage_properties(1, cfg.timing))));
  }
  {
    // 3. Guarantee A_in (induction base):  IN || I || A_out  <=  A_in.
    configure(suite.add(
        "3. IN || I || Aout <= Ain",
        {suite.own(make_in_env(cfg.timing)),
         suite.own(make_stage(1, cfg.timing)), suite.own(make_aout(2)),
         monitor_of(make_ain(2))},
        own_props(stage_properties(1, cfg.timing))));
  }
  {
    // 4. A_in is a behavioural fixed point:  A_in || I || A_out  <=  A_in.
    configure(suite.add(
        "4. Ain || I || Aout <= Ain (fixed point)",
        {suite.own(make_ain(1)), suite.own(make_stage(1, cfg.timing)),
         suite.own(make_aout(2)), monitor_of(make_ain(2))},
        own_props(stage_properties(1, cfg.timing))));
  }
  {
    // 5. IN || I || OUT |= S — the 1-stage pipeline, both ends pulsed.
    ModuleSet set = flat_pipeline(1, cfg.timing);
    std::vector<const Module*> modules;
    for (auto& m : set.owned) modules.push_back(suite.own(std::move(*m)));
    PropertySet ps;
    ps.add(std::make_unique<DeadlockFreedom>());
    ps.add(std::make_unique<PersistencyProperty>());
    const Netlist nl =
        make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
    for (auto& p : short_circuit_properties(nl)) ps.add(std::move(p));
    configure(suite.add("5. IN || I || OUT |= S", std::move(modules),
                        own_props(std::move(ps))));
  }
  return suite;
}

std::vector<NamedResult> run_all_experiments(const ExperimentConfig& cfg) {
  std::vector<NamedResult> out;
  out.push_back({"1. Ain || Aout |= S", experiment1(cfg)});
  out.push_back({"2. Ain || I || OUT <= Aout", experiment2(cfg)});
  out.push_back({"3. IN || I || Aout <= Ain", experiment3(cfg)});
  out.push_back({"4. Ain || I || Aout <= Ain (fixed point)", experiment4(cfg)});
  out.push_back({"5. IN || I || OUT |= S", experiment5(cfg)});
  return out;
}

}  // namespace rtv::ipcmos
