#include "rtv/ipcmos/experiments.hpp"

#include "rtv/circuit/invariants.hpp"
#include "rtv/verify/containment.hpp"

namespace rtv::ipcmos {

namespace {

/// Owning property bundle.
struct PropertySet {
  std::vector<std::unique_ptr<SafetyProperty>> owned;
  std::vector<const SafetyProperty*> ptrs;

  void add(std::unique_ptr<SafetyProperty> p) {
    owned.push_back(std::move(p));
    ptrs.push_back(owned.back().get());
  }
};

/// Deadlock-freedom, persistency and the short-circuit invariants of a
/// transistor-level stage (Section 5.1).
PropertySet stage_properties(int stage_index, const PipelineTiming& t) {
  PropertySet ps;
  ps.add(std::make_unique<DeadlockFreedom>());
  ps.add(std::make_unique<PersistencyProperty>());
  const Netlist nl =
      make_stage_netlist("I" + std::to_string(stage_index),
                         linear_channels(stage_index), t.stage);
  for (auto& p : short_circuit_properties(nl)) ps.add(std::move(p));
  return ps;
}

}  // namespace

VerificationResult experiment1(const ExperimentConfig& cfg) {
  // A_in || A_out |= S: the abstractions at boundary 1, checked for
  // deadlock-freedom; protocol conformance is structural (chokes).
  const Module ain = make_ain(1);
  const Module aout = make_aout(1);
  PropertySet ps;
  ps.add(std::make_unique<DeadlockFreedom>());
  return verify_modules({&ain, &aout}, ps.ptrs, cfg.verify);
}

VerificationResult experiment2(const ExperimentConfig& cfg) {
  // Guarantee A_out:  A_in || I || OUT  <=  A_out at boundary 1
  // (Fig. 9(a); the checked output is ACK = A1).
  const Module ain = make_ain(1);
  const Module stage = make_stage(1, cfg.timing);
  const Module out = make_out_env(1, cfg.timing);
  const Module aout = make_aout(1);
  PropertySet ps = stage_properties(1, cfg.timing);
  return check_containment({&ain, &stage, &out}, aout, ps.ptrs, cfg.verify);
}

VerificationResult experiment3(const ExperimentConfig& cfg) {
  // Guarantee A_in (induction base):  IN || I || A_out  <=  A_in at
  // boundary 2 (Fig. 9(b); the checked output is VALID = V2).
  const Module in = make_in_env(cfg.timing);
  const Module stage = make_stage(1, cfg.timing);
  const Module aout = make_aout(2);
  const Module ain = make_ain(2);
  PropertySet ps = stage_properties(1, cfg.timing);
  return check_containment({&in, &stage, &aout}, ain, ps.ptrs, cfg.verify);
}

VerificationResult experiment4(const ExperimentConfig& cfg) {
  // A_in is a behavioural fixed point:  A_in || I || A_out  <=  A_in at
  // boundary 2 (Fig. 9(c)) — the induction step for any pipeline length.
  const Module ain1 = make_ain(1);
  const Module stage = make_stage(1, cfg.timing);
  const Module aout = make_aout(2);
  const Module ain2 = make_ain(2);
  PropertySet ps = stage_properties(1, cfg.timing);
  return check_containment({&ain1, &stage, &aout}, ain2, ps.ptrs, cfg.verify);
}

VerificationResult experiment5(const ExperimentConfig& cfg) {
  // 1-stage pipeline with pulse-driven environments at both ends:
  // IN || I || OUT |= S (Section 5).
  return flat_experiment(1, cfg);
}

VerificationResult flat_experiment(int n_stages, const ExperimentConfig& cfg) {
  const ModuleSet set = flat_pipeline(n_stages, cfg.timing);
  PropertySet ps;
  ps.add(std::make_unique<DeadlockFreedom>());
  ps.add(std::make_unique<PersistencyProperty>());
  for (int k = 1; k <= n_stages; ++k) {
    const Netlist nl = make_stage_netlist("I" + std::to_string(k),
                                          linear_channels(k), cfg.timing.stage);
    for (auto& p : short_circuit_properties(nl)) ps.add(std::move(p));
  }
  return verify_modules(set.ptrs, ps.ptrs, cfg.verify);
}

std::vector<NamedResult> run_all_experiments(const ExperimentConfig& cfg) {
  std::vector<NamedResult> out;
  out.push_back({"1. Ain || Aout |= S", experiment1(cfg)});
  out.push_back({"2. Ain || I || OUT <= Aout", experiment2(cfg)});
  out.push_back({"3. IN || I || Aout <= Ain", experiment3(cfg)});
  out.push_back({"4. Ain || I || Aout <= Ain (fixed point)", experiment4(cfg)});
  out.push_back({"5. IN || I || OUT |= S", experiment5(cfg)});
  return out;
}

}  // namespace rtv::ipcmos
