#include "rtv/ipcmos/topologies.hpp"

#include "rtv/circuit/elaborate.hpp"
#include "rtv/circuit/invariants.hpp"

namespace rtv::ipcmos {

namespace {

StageChannels join_channels() {
  StageChannels ch;
  ch.valid_in = {"Va", "Vb"};
  ch.ack_out = "A";
  ch.valid_out = {"Vo"};
  ch.ack_in = {"Ao"};
  return ch;
}

StageChannels fork_channels() {
  StageChannels ch;
  ch.valid_in = {"Vi"};
  ch.ack_out = "Ai";
  ch.valid_out = {"Va", "Vb"};
  ch.ack_in = {"Aa", "Ab"};
  return ch;
}

VerificationResult verify_topology(const ModuleSet& set, const Netlist& nl,
                                   const VerifyOptions& opts) {
  DeadlockFreedom dead;
  PersistencyProperty pers;
  std::vector<const SafetyProperty*> props{&dead, &pers};
  const auto scs = short_circuit_properties(nl);
  for (const auto& p : scs) props.push_back(p.get());
  return verify_modules(set.ptrs, props, opts);
}

}  // namespace

Netlist make_join_netlist(const StageTiming& t) {
  return make_stage_netlist("J", join_channels(), t);
}

Netlist make_fork_netlist(const StageTiming& t) {
  return make_stage_netlist("F", fork_channels(), t);
}

ModuleSet join_system(const PipelineTiming& t) {
  ModuleSet set;
  set.add(stg_library::in_module("Va", "A", t.env));
  set.add(stg_library::in_module("Vb", "A", t.env));
  set.add(elaborate(make_join_netlist(t.stage)));
  set.add(stg_library::out_module("Vo", "Ao", t.env));
  return set;
}

ModuleSet fork_system(const PipelineTiming& t) {
  ModuleSet set;
  set.add(stg_library::in_module("Vi", "Ai", t.env));
  set.add(elaborate(make_fork_netlist(t.stage)));
  set.add(stg_library::out_module("Va", "Aa", t.env));
  set.add(stg_library::out_module("Vb", "Ab", t.env));
  return set;
}

VerificationResult verify_join(const ExperimentConfig& cfg) {
  const ModuleSet set = join_system(cfg.timing);
  return verify_topology(set, make_join_netlist(cfg.timing.stage), cfg.verify);
}

VerificationResult verify_fork(const ExperimentConfig& cfg) {
  const ModuleSet set = fork_system(cfg.timing);
  return verify_topology(set, make_fork_netlist(cfg.timing.stage), cfg.verify);
}

}  // namespace rtv::ipcmos
