#include "rtv/stg/elaborate.hpp"

#include <deque>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace rtv {

namespace {

struct Marking {
  BitVec places;
  BitVec values;

  friend bool operator==(const Marking& a, const Marking& b) {
    return a.places == b.places && a.values == b.values;
  }
};

struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept {
    return m.places.hash() * 31 + m.values.hash();
  }
};

}  // namespace

Module elaborate(const Stg& stg, const StgElaborateOptions& options) {
  TransitionSystem ts;
  const std::vector<std::string> signals = stg.signals();
  ts.set_signal_names(signals);

  auto signal_idx = [&](const std::string& s) {
    return static_cast<std::size_t>(
        std::lower_bound(signals.begin(), signals.end(), s) - signals.begin());
  };

  // Event per distinct label; delays of same-label transitions intersect.
  std::vector<EventId> event_of(stg.num_transitions());
  for (std::size_t t = 0; t < stg.num_transitions(); ++t) {
    const StgTransition& tr = stg.transition(t);
    const EventId existing = ts.event_by_label(tr.label());
    if (existing.valid()) {
      event_of[t] = existing;
      ts.set_event_delay(existing, ts.delay(existing).intersect(tr.delay));
    } else {
      event_of[t] = ts.add_event(tr.label(), tr.delay, tr.kind);
    }
  }

  Marking init;
  init.places = BitVec(stg.num_places());
  for (std::size_t p = 0; p < stg.num_places(); ++p)
    if (stg.initially_marked(PlaceId(static_cast<PlaceId::underlying_type>(p))))
      init.places.set(p);
  init.values = BitVec(signals.size());
  for (const std::string& s : signals)
    if (stg.initial_value(s)) init.values.set(signal_idx(s));

  std::unordered_map<Marking, StateId, MarkingHash> index;
  std::deque<Marking> queue;

  auto intern = [&](const Marking& m) {
    auto it = index.find(m);
    if (it != index.end()) return it->second;
    const StateId s = ts.add_state(m.places.to_string());
    ts.set_state_valuation(s, m.values);
    index.emplace(m, s);
    queue.push_back(m);
    return s;
  };

  ts.set_initial(intern(init));

  while (!queue.empty()) {
    if (index.size() > options.max_markings)
      throw std::runtime_error("STG '" + stg.name() + "': marking budget exhausted");
    const Marking m = queue.front();
    queue.pop_front();
    const StateId from = index.at(m);

    for (std::size_t t = 0; t < stg.num_transitions(); ++t) {
      const StgTransition& tr = stg.transition(t);
      bool enabled = !tr.preset.empty();
      for (PlaceId p : tr.preset) {
        if (!m.places.test(p.value())) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;

      Marking next = m;
      for (PlaceId p : tr.preset) next.places.reset(p.value());
      for (PlaceId p : tr.postset) {
        if (options.require_one_safe && next.places.test(p.value())) {
          throw std::runtime_error("STG '" + stg.name() + "': place '" +
                                   stg.place_name(p) + "' not 1-safe");
        }
        next.places.set(p.value());
      }
      if (!tr.signal.empty()) {
        const std::size_t si = signal_idx(tr.signal);
        if (next.values.test(si) == tr.rising) {
          std::ostringstream os;
          os << "STG '" << stg.name() << "': inconsistent transition "
             << tr.label() << " (signal already "
             << (tr.rising ? "high" : "low") << ")";
          throw std::runtime_error(os.str());
        }
        next.values.set(si, tr.rising);
      }
      ts.add_transition(from, event_of[t], intern(next));
    }
  }

  return Module(stg.name(), std::move(ts));
}

}  // namespace rtv
