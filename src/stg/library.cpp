#include "rtv/stg/library.hpp"

namespace rtv::stg_library {

Stg make_in(const std::string& valid, const std::string& ack,
            const EnvTiming& timing) {
  Stg stg("IN(" + valid + "," + ack + ")");
  stg.set_initial_value(valid, true);
  stg.set_initial_value(ack, false);

  const auto v_minus =
      stg.add_transition(valid, false, timing.valid_fall, EventKind::kOutput);
  const auto v_plus =
      stg.add_transition(valid, true, timing.valid_rise, EventKind::kOutput);
  const auto a_plus = stg.add_transition(ack, true, DelayInterval::unbounded(),
                                         EventKind::kInput);
  const auto a_minus = stg.add_transition(ack, false, DelayInterval::unbounded(),
                                          EventKind::kInput);

  // VALID pulse: VALID- -> VALID- ... -> VALID+ -> (ready for next VALID-).
  const PlaceId p_pulse = stg.chain(v_minus, v_plus);
  (void)p_pulse;
  const PlaceId p_vdone = stg.add_place("vdone", true);
  stg.arc(v_plus, p_vdone);
  stg.arc(p_vdone, v_minus);

  // Interlock: no new data until the previous one was acknowledged.
  const PlaceId p_wait_ack = stg.chain(v_minus, a_plus);
  (void)p_wait_ack;
  const PlaceId p_acked = stg.add_place("acked", true);
  stg.arc(a_plus, p_acked);
  stg.arc(p_acked, v_minus);

  // ACK pulse bookkeeping: ACK- after ACK+, next ACK+ after ACK-.
  stg.chain(a_plus, a_minus);
  const PlaceId p_ackdone = stg.add_place("ackdone", true);
  stg.arc(a_minus, p_ackdone);
  stg.arc(p_ackdone, a_plus);
  return stg;
}

Stg make_out(const std::string& valid, const std::string& ack,
             const EnvTiming& timing) {
  Stg stg("OUT(" + valid + "," + ack + ")");
  stg.set_initial_value(valid, true);
  stg.set_initial_value(ack, false);

  const auto v_minus = stg.add_transition(valid, false,
                                          DelayInterval::unbounded(),
                                          EventKind::kInput);
  const auto v_plus = stg.add_transition(valid, true, DelayInterval::unbounded(),
                                         EventKind::kInput);
  const auto a_plus =
      stg.add_transition(ack, true, timing.ack_rise, EventKind::kOutput);
  const auto a_minus =
      stg.add_transition(ack, false, timing.ack_fall, EventKind::kOutput);

  // Accept the VALID pulse; a new pulse is only accepted once the previous
  // ACK pulse completed (keeps the net 1-safe; the pipeline interlock
  // guarantees it anyway).
  stg.chain(v_minus, v_plus);
  const PlaceId q_ready = stg.add_place("ready", true);
  stg.arc(v_plus, q_ready);
  stg.arc(q_ready, v_minus);
  const PlaceId q_ackdone = stg.add_place("ackdone", true);
  stg.arc(q_ackdone, v_minus);

  // Acknowledge each data item once, with a guaranteed minimum positive
  // pulse width (ack_fall.lo()).
  stg.chain(v_minus, a_plus);
  stg.chain(a_plus, a_minus);
  stg.arc(a_minus, q_ackdone);
  return stg;
}

Stg make_ain(const std::string& valid, const std::string& ack) {
  Stg stg("Ain(" + valid + "," + ack + ")");
  stg.set_initial_value(valid, true);
  stg.set_initial_value(ack, false);

  // A_in is untimed in its protocol; the single timing annotation it
  // carries is the bounded handshake-reset latency VALID+ <= ACK+ + 7,
  // which every concrete refinement guarantees (IN: VALID+ - ACK+ in
  // [eps, 7] via the pulse width; a stage: VALID+ at ACK+ + [2, 4]).
  const auto v_minus = stg.add_transition(valid, false,
                                          DelayInterval::unbounded(),
                                          EventKind::kOutput);
  const auto v_plus = stg.add_transition(valid, true, DelayInterval::units(0, 7),
                                         EventKind::kOutput);
  const auto a_plus = stg.add_transition(ack, true, DelayInterval::unbounded(),
                                         EventKind::kInput);
  const auto a_minus = stg.add_transition(ack, false, DelayInterval::unbounded(),
                                          EventKind::kInput);

  // Two-phase interlock (Fig. 6): VALID- -> ACK+ -> VALID+ -> VALID- ...
  stg.chain(v_minus, a_plus);
  stg.chain(a_plus, v_plus);
  const PlaceId p_ready = stg.add_place("ready", true);
  stg.arc(v_plus, p_ready);
  stg.arc(p_ready, v_minus);

  // ACK resets independently; next ACK+ only after ACK-.
  stg.chain(a_plus, a_minus);
  const PlaceId p_ackdone = stg.add_place("ackdone", true);
  stg.arc(a_minus, p_ackdone);
  stg.arc(p_ackdone, a_plus);
  return stg;
}

Stg make_aout(const std::string& valid, const std::string& ack) {
  Stg stg("Aout(" + valid + "," + ack + ")");
  stg.set_initial_value(valid, true);
  stg.set_initial_value(ack, false);

  // A_out's acknowledge carries the envelope of its refinements:
  // ACK+ at VALID- + [8, 15] (OUT: [8, 11]; a stage: [9, 15]) and an ACK
  // pulse width of [5, 10].
  const auto v_minus = stg.add_transition(valid, false,
                                          DelayInterval::unbounded(),
                                          EventKind::kInput);
  const auto v_plus = stg.add_transition(valid, true, DelayInterval::unbounded(),
                                         EventKind::kInput);
  const auto a_plus = stg.add_transition(ack, true, DelayInterval::units(8, 15),
                                         EventKind::kOutput);
  const auto a_minus = stg.add_transition(ack, false, DelayInterval::units(5, 10),
                                          EventKind::kOutput);

  // Sample the low VALID, acknowledge once.
  stg.chain(v_minus, a_plus);
  // VALID+ arrives only after ACK+ (interlock of Fig. 6); the next VALID-
  // needs the previous VALID+.
  stg.chain(a_plus, v_plus);
  const PlaceId q_ready = stg.add_place("ready", true);
  stg.arc(v_plus, q_ready);
  stg.arc(q_ready, v_minus);

  // ACK pulse: independent reset, next ACK+ after ACK-.
  stg.chain(a_plus, a_minus);
  const PlaceId q_ackdone = stg.add_place("ackdone", true);
  stg.arc(a_minus, q_ackdone);
  stg.arc(q_ackdone, a_plus);
  return stg;
}

Module in_module(const std::string& valid, const std::string& ack,
                 const EnvTiming& timing) {
  return elaborate(make_in(valid, ack, timing));
}
Module out_module(const std::string& valid, const std::string& ack,
                  const EnvTiming& timing) {
  return elaborate(make_out(valid, ack, timing));
}
Module ain_module(const std::string& valid, const std::string& ack) {
  return elaborate(make_ain(valid, ack));
}
Module aout_module(const std::string& valid, const std::string& ack) {
  return elaborate(make_aout(valid, ack));
}

}  // namespace rtv::stg_library
