#include "rtv/stg/stg.hpp"

#include <algorithm>
#include <cassert>

namespace rtv {

PlaceId Stg::add_place(std::string name, bool initially_marked) {
  places_.push_back(std::move(name));
  marked_.push_back(initially_marked);
  return PlaceId(static_cast<PlaceId::underlying_type>(places_.size() - 1));
}

void Stg::mark(PlaceId p, bool marked) { marked_[p.value()] = marked; }

std::size_t Stg::add_transition(const std::string& signal, bool rising,
                                DelayInterval delay, EventKind kind) {
  StgTransition t;
  t.signal = signal;
  t.rising = rising;
  t.delay = delay;
  t.kind = kind;
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

std::size_t Stg::add_dummy(const std::string& name, DelayInterval delay) {
  StgTransition t;
  t.dummy_name = name;
  t.delay = delay;
  t.kind = EventKind::kInternal;
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

void Stg::arc(PlaceId from, std::size_t to_transition) {
  transitions_[to_transition].preset.push_back(from);
}

void Stg::arc(std::size_t from_transition, PlaceId to) {
  transitions_[from_transition].postset.push_back(to);
}

PlaceId Stg::chain(std::size_t t1, std::size_t t2, bool initially_marked) {
  const PlaceId p = add_place(
      "p(" + transitions_[t1].label() + "->" + transitions_[t2].label() + ")",
      initially_marked);
  arc(t1, p);
  arc(p, t2);
  return p;
}

void Stg::set_initial_value(const std::string& signal, bool value) {
  for (auto& [s, v] : initial_values_) {
    if (s == signal) {
      v = value;
      return;
    }
  }
  initial_values_.emplace_back(signal, value);
}

std::vector<std::string> Stg::signals() const {
  std::vector<std::string> out;
  for (const StgTransition& t : transitions_)
    if (!t.signal.empty()) out.push_back(t.signal);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Stg::initial_value(const std::string& signal) const {
  for (const auto& [s, v] : initial_values_)
    if (s == signal) return v;
  return false;
}

}  // namespace rtv
