#include "rtv/stg/astg.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rtv {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // comment
    out.push_back(tok);
  }
  return out;
}

struct ParseState {
  Stg stg{"astg"};
  std::string model_name = "astg";
  std::set<std::string> inputs, outputs, internals, dummies;
  // token (e.g. "a+", "a+/2", "tau") -> transition index
  std::map<std::string, std::size_t> transitions;
  std::map<std::string, PlaceId> places;
  // implicit place between two transition tokens
  std::map<std::pair<std::string, std::string>, PlaceId> implicit;

  bool is_transition_token(const std::string& tok) const {
    if (dummies.count(strip_occurrence(tok))) return true;
    std::string sig;
    bool rising;
    if (!parse_transition_label(strip_occurrence(tok), &sig, &rising))
      return false;
    return inputs.count(sig) || outputs.count(sig) || internals.count(sig);
  }

  static std::string strip_occurrence(const std::string& tok) {
    const auto slash = tok.find('/');
    return slash == std::string::npos ? tok : tok.substr(0, slash);
  }

  std::size_t ensure_transition(const std::string& tok) {
    const auto it = transitions.find(tok);
    if (it != transitions.end()) return it->second;
    const std::string base = strip_occurrence(tok);
    std::size_t t;
    if (dummies.count(base)) {
      t = stg.add_dummy(base);
    } else {
      std::string sig;
      bool rising;
      parse_transition_label(base, &sig, &rising);
      const EventKind kind =
          inputs.count(sig) ? EventKind::kInput : EventKind::kOutput;
      t = stg.add_transition(sig, rising, DelayInterval::unbounded(), kind);
    }
    transitions.emplace(tok, t);
    return t;
  }

  PlaceId ensure_place(const std::string& name) {
    const auto it = places.find(name);
    if (it != places.end()) return it->second;
    const PlaceId p = stg.add_place(name);
    places.emplace(name, p);
    return p;
  }

  PlaceId ensure_implicit(const std::string& from, const std::string& to) {
    const auto key = std::make_pair(from, to);
    const auto it = implicit.find(key);
    if (it != implicit.end()) return it->second;
    const PlaceId p = stg.add_place("<" + from + "," + to + ">");
    implicit.emplace(key, p);
    stg.arc(ensure_transition(from), p);
    stg.arc(p, ensure_transition(to));
    return p;
  }
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("astg parse error (line " + std::to_string(line) +
                           "): " + message);
}

Time parse_bound(int line, const std::string& tok) {
  if (tok == "inf" || tok == "INF") return kTimeInfinity;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0) fail(line, "bad delay '" + tok + "'");
  return ticks_from_units(v);
}

}  // namespace

Stg parse_astg(std::istream& in) {
  ParseState ps;
  enum class Section { kHeader, kGraph, kDone };
  Section section = Section::kHeader;
  std::string line;
  int line_no = 0;
  std::vector<std::pair<DelayInterval, std::string>> delays;  // applied last
  std::vector<std::string> marking_tokens;

  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& head = toks[0];

    if (head == ".model" || head == ".name") {
      if (toks.size() > 1) ps.model_name = toks[1];
    } else if (head == ".inputs") {
      ps.inputs.insert(toks.begin() + 1, toks.end());
    } else if (head == ".outputs") {
      ps.outputs.insert(toks.begin() + 1, toks.end());
    } else if (head == ".internal") {
      ps.internals.insert(toks.begin() + 1, toks.end());
    } else if (head == ".dummy") {
      ps.dummies.insert(toks.begin() + 1, toks.end());
    } else if (head == ".initial") {
      // Non-standard: signals whose initial value is high.
      for (std::size_t i = 1; i < toks.size(); ++i)
        ps.stg.set_initial_value(toks[i], true);
    } else if (head == ".delay") {
      if (toks.size() != 4) fail(line_no, ".delay needs: transition lo hi");
      delays.emplace_back(DelayInterval(parse_bound(line_no, toks[2]),
                                        parse_bound(line_no, toks[3])),
                          toks[1]);
    } else if (head == ".graph") {
      section = Section::kGraph;
    } else if (head == ".marking") {
      // .marking { tok tok <a,b> } possibly split over tokens.
      for (std::size_t i = 1; i < toks.size(); ++i) {
        std::string t = toks[i];
        t.erase(std::remove(t.begin(), t.end(), '{'), t.end());
        t.erase(std::remove(t.begin(), t.end(), '}'), t.end());
        if (!t.empty()) marking_tokens.push_back(t);
      }
    } else if (head == ".end") {
      section = Section::kDone;
      break;
    } else if (head[0] == '.') {
      // Unknown directive (e.g. .capacity): ignore for compatibility.
    } else if (section == Section::kGraph) {
      if (toks.size() < 2) fail(line_no, "arc line needs a source and targets");
      const std::string& from = toks[0];
      const bool from_is_transition = ps.is_transition_token(from);
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const std::string& to = toks[i];
        const bool to_is_transition = ps.is_transition_token(to);
        if (from_is_transition && to_is_transition) {
          ps.ensure_implicit(from, to);
        } else if (from_is_transition) {
          ps.stg.arc(ps.ensure_transition(from), ps.ensure_place(to));
        } else if (to_is_transition) {
          ps.stg.arc(ps.ensure_place(from), ps.ensure_transition(to));
        } else {
          fail(line_no, "place-to-place arc '" + from + " " + to + "'");
        }
      }
    } else {
      fail(line_no, "unexpected line '" + head + "' outside .graph");
    }
  }

  // Initial marking.
  for (const std::string& tok : marking_tokens) {
    if (tok.front() == '<') {
      const auto comma = tok.find(',');
      if (comma == std::string::npos || tok.back() != '>')
        throw std::runtime_error("astg: bad implicit marking '" + tok + "'");
      const std::string a = tok.substr(1, comma - 1);
      const std::string b = tok.substr(comma + 1, tok.size() - comma - 2);
      ps.stg.mark(ps.ensure_implicit(a, b));
    } else {
      const auto it = ps.places.find(tok);
      if (it == ps.places.end())
        throw std::runtime_error("astg: marking of unknown place '" + tok + "'");
      ps.stg.mark(it->second);
    }
  }

  // Delay annotations (all occurrences of the named transition).
  for (const auto& [delay, tok] : delays) {
    bool applied = false;
    for (std::size_t t = 0; t < ps.stg.num_transitions(); ++t) {
      if (ps.stg.transition(t).label() == ParseState::strip_occurrence(tok)) {
        ps.stg.transition(t).delay = delay;
        applied = true;
      }
    }
    if (!applied)
      throw std::runtime_error("astg: .delay for unknown transition '" + tok + "'");
  }

  // Rebuild with the right name (Stg's name is immutable after
  // construction, so copy into a fresh one if needed).
  if (ps.model_name != ps.stg.name()) {
    Stg named(ps.model_name);
    // Straight structural copy.
    for (std::size_t p = 0; p < ps.stg.num_places(); ++p) {
      const PlaceId id(static_cast<PlaceId::underlying_type>(p));
      named.add_place(ps.stg.place_name(id), ps.stg.initially_marked(id));
    }
    for (std::size_t t = 0; t < ps.stg.num_transitions(); ++t) {
      const StgTransition& tr = ps.stg.transition(t);
      std::size_t nt;
      if (tr.signal.empty()) {
        nt = named.add_dummy(tr.dummy_name, tr.delay);
      } else {
        nt = named.add_transition(tr.signal, tr.rising, tr.delay, tr.kind);
      }
      for (PlaceId p : tr.preset) named.arc(p, nt);
      for (PlaceId p : tr.postset) named.arc(nt, p);
    }
    for (const std::string& sig : ps.stg.signals())
      named.set_initial_value(sig, ps.stg.initial_value(sig));
    return named;
  }
  return ps.stg;
}

Stg parse_astg_string(const std::string& text) {
  std::istringstream is(text);
  return parse_astg(is);
}

std::string write_astg(const Stg& stg) {
  std::ostringstream os;
  os << ".model " << stg.name() << "\n";

  std::set<std::string> inputs, outputs, dummies;
  for (std::size_t t = 0; t < stg.num_transitions(); ++t) {
    const StgTransition& tr = stg.transition(t);
    if (tr.signal.empty()) {
      dummies.insert(tr.dummy_name);
    } else if (tr.kind == EventKind::kInput) {
      inputs.insert(tr.signal);
    } else {
      outputs.insert(tr.signal);
    }
  }
  auto emit_set = [&](const char* directive, const std::set<std::string>& set) {
    if (set.empty()) return;
    os << directive;
    for (const std::string& s : set) os << " " << s;
    os << "\n";
  };
  emit_set(".inputs", inputs);
  emit_set(".outputs", outputs);
  emit_set(".dummy", dummies);
  {
    std::set<std::string> high;
    for (const std::string& sig : stg.signals())
      if (stg.initial_value(sig)) high.insert(sig);
    emit_set(".initial", high);
  }

  // Occurrence-indexed token per transition.
  std::map<std::string, int> label_count;
  std::vector<std::string> token(stg.num_transitions());
  for (std::size_t t = 0; t < stg.num_transitions(); ++t) {
    const std::string label = stg.transition(t).label();
    const int k = ++label_count[label];
    token[t] = k == 1 ? label : label + "/" + std::to_string(k);
  }

  // Per place: producers and consumers.
  std::vector<std::vector<std::size_t>> producers(stg.num_places());
  std::vector<std::vector<std::size_t>> consumers(stg.num_places());
  for (std::size_t t = 0; t < stg.num_transitions(); ++t) {
    for (PlaceId p : stg.transition(t).preset) consumers[p.value()].push_back(t);
    for (PlaceId p : stg.transition(t).postset) producers[p.value()].push_back(t);
  }
  auto is_implicit = [&](std::size_t p) {
    return producers[p].size() == 1 && consumers[p].size() == 1;
  };
  auto place_token = [&](std::size_t p) {
    const PlaceId id(static_cast<PlaceId::underlying_type>(p));
    const std::string& n = stg.place_name(id);
    if (!n.empty() && n.find(' ') == std::string::npos && n[0] != '<' &&
        n.find('(') == std::string::npos)
      return n;
    return "p" + std::to_string(p);
  };

  os << ".graph\n";
  for (std::size_t p = 0; p < stg.num_places(); ++p) {
    if (is_implicit(p)) {
      os << token[producers[p][0]] << " " << token[consumers[p][0]] << "\n";
    } else {
      for (std::size_t t : producers[p]) os << token[t] << " " << place_token(p) << "\n";
      for (std::size_t t : consumers[p]) os << place_token(p) << " " << token[t] << "\n";
    }
  }

  // Delay annotations (only where bounded).
  for (std::size_t t = 0; t < stg.num_transitions(); ++t) {
    const DelayInterval d = stg.transition(t).delay;
    if (d.is_unbounded()) continue;
    os << ".delay " << token[t] << " " << units_from_ticks(d.lo()) << " ";
    if (d.upper_bounded()) {
      os << units_from_ticks(d.hi());
    } else {
      os << "inf";
    }
    os << "\n";
  }

  os << ".marking {";
  for (std::size_t p = 0; p < stg.num_places(); ++p) {
    if (!stg.initially_marked(PlaceId(static_cast<PlaceId::underlying_type>(p))))
      continue;
    if (is_implicit(p)) {
      os << " <" << token[producers[p][0]] << "," << token[consumers[p][0]] << ">";
    } else {
      os << " " << place_token(p);
    }
  }
  os << " }\n.end\n";
  return os.str();
}

}  // namespace rtv
