#include "rtv/timing/ces.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rtv {

namespace {

bool contains(const std::vector<EventId>& sorted, EventId e) {
  return std::binary_search(sorted.begin(), sorted.end(), e);
}

/// Enabling point of the occurrence of `event` observed (pending or firing)
/// at point `k`: the smallest m <= k such that the event is enabled at every
/// point of [m, k] and was not fired at point m-1.  Points: 0..n-1 are trace
/// steps; n is the final state.
int enabling_point(const Trace& trace, EventId event, int k) {
  const int n = static_cast<int>(trace.steps.size());
  auto enabled_at = [&](int p) -> const std::vector<EventId>& {
    return p < n ? trace.steps[static_cast<std::size_t>(p)].enabled
                 : trace.final_enabled;
  };
  int m = k;
  while (m > 0) {
    const auto& prev = trace.steps[static_cast<std::size_t>(m - 1)];
    if (prev.event == event) break;             // previous occurrence fired
    if (!contains(prev.enabled, event)) break;  // was disabled at m-1
    --m;
  }
  (void)enabled_at;
  return m;
}

}  // namespace

std::vector<int> Ces::cone(int v) const {
  std::vector<bool> in(events.size(), false);
  std::vector<int> stack{v};
  in[static_cast<std::size_t>(v)] = true;
  while (!stack.empty()) {
    const int x = stack.back();
    stack.pop_back();
    for (int p : events[static_cast<std::size_t>(x)].preds) {
      if (!in[static_cast<std::size_t>(p)]) {
        in[static_cast<std::size_t>(p)] = true;
        stack.push_back(p);
      }
    }
  }
  std::vector<int> out;
  for (std::size_t i = 0; i < events.size(); ++i)
    if (in[i]) out.push_back(static_cast<int>(i));
  return out;
}

int Ces::find_label(const std::string& label) const {
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i].label == label) return static_cast<int>(i);
  return -1;
}

std::string Ces::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const CesEvent& e = events[i];
    os << i << ": " << e.label << " " << e.delay.to_string();
    if (e.pending) os << " (pending)";
    if (!e.preds.empty()) {
      os << " <- {";
      for (std::size_t k = 0; k < e.preds.size(); ++k) {
        if (k) os << ",";
        os << e.preds[k];
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

Ces extract_ces(const TransitionSystem& ts, const Trace& trace,
                bool include_pending) {
  Ces ces;
  const int n = static_cast<int>(trace.steps.size());

  // Occurrence list: fired steps, then pending events of the final state.
  struct Occ {
    EventId event;
    int fired_at;  // -1 for pending
    int enab;      // enabling point
  };
  std::vector<Occ> occs;
  occs.reserve(static_cast<std::size_t>(n) + trace.final_enabled.size());
  for (int i = 0; i < n; ++i) {
    const EventId e = trace.steps[static_cast<std::size_t>(i)].event;
    occs.push_back(Occ{e, i, enabling_point(trace, e, i)});
  }
  if (include_pending) {
    for (EventId e : trace.final_enabled) {
      occs.push_back(Occ{e, -1, enabling_point(trace, e, n)});
    }
  }

  // Precedence: fired occurrence i precedes occurrence j iff i fired before
  // j's enabling window opened (they were never simultaneously enabled).
  const auto precedes = [&](int i, int j) {
    return occs[static_cast<std::size_t>(i)].fired_at >= 0 &&
           occs[static_cast<std::size_t>(i)].fired_at <
               occs[static_cast<std::size_t>(j)].enab;
  };

  ces.events.resize(occs.size());
  for (std::size_t j = 0; j < occs.size(); ++j) {
    CesEvent& ev = ces.events[j];
    ev.event = occs[j].event;
    ev.label = ts.label(occs[j].event);
    ev.delay = ts.delay(occs[j].event);
    ev.trace_point = occs[j].fired_at;
    ev.pending = occs[j].fired_at < 0;
    // Direct predecessors: maximal elements of {i : i < j's enabling}.
    for (std::size_t i = 0; i < occs.size(); ++i) {
      if (!precedes(static_cast<int>(i), static_cast<int>(j))) continue;
      bool maximal = true;
      for (std::size_t k = 0; k < occs.size(); ++k) {
        if (k == i || !precedes(static_cast<int>(k), static_cast<int>(j)))
          continue;
        if (precedes(static_cast<int>(i), static_cast<int>(k))) {
          maximal = false;
          break;
        }
      }
      if (maximal) ev.preds.push_back(static_cast<int>(i));
    }
  }
  return ces;
}

CesBounds propagate_bounds(const Ces& ces) {
  CesBounds b;
  b.earliest.resize(ces.size(), 0);
  b.latest.resize(ces.size(), 0);
  for (std::size_t v = 0; v < ces.size(); ++v) {
    Time emin = 0, emax = 0;
    for (int p : ces.events[v].preds) {
      emin = std::max(emin, b.earliest[static_cast<std::size_t>(p)]);
      emax = std::max(emax, b.latest[static_cast<std::size_t>(p)]);
    }
    const DelayInterval& d = ces.events[v].delay;
    b.earliest[v] = emin + d.lo();
    b.latest[v] =
        (emax >= kTimeInfinity || !d.upper_bounded()) ? kTimeInfinity
                                                      : emax + d.hi();
  }
  return b;
}

}  // namespace rtv
