#include "rtv/timing/orderings.hpp"

#include <sstream>

#include "rtv/timing/maxsep.hpp"

namespace rtv {

namespace {

/// True iff a is a (transitive) causal predecessor of b.
bool causally_before(const Ces& ces, int a, int b) {
  const auto cone = ces.cone(b);
  for (int v : cone)
    if (v == a && a != b) return true;
  return false;
}

}  // namespace

std::vector<CesOrdering> derive_ces_orderings(const Ces& ces) {
  std::vector<CesOrdering> out;
  const int n = static_cast<int>(ces.size());
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      if (causally_before(ces, a, b)) continue;  // already ordered structurally
      const MaxSepResult r = max_separation(ces, a, b);
      if (r.separation < 0) {
        out.push_back(CesOrdering{a, b, -r.separation});
      }
    }
  }
  return out;
}

std::string format_ces_orderings(const Ces& ces,
                                 const std::vector<CesOrdering>& orderings) {
  std::ostringstream os;
  for (const CesOrdering& o : orderings) {
    os << ces.events[static_cast<std::size_t>(o.before)].label << " before "
       << ces.events[static_cast<std::size_t>(o.after)].label << " (slack "
       << units_from_ticks(o.slack) << ")\n";
  }
  return os.str();
}

}  // namespace rtv
