#include "rtv/timing/maxsep.hpp"

#include <algorithm>
#include <cassert>

#include "rtv/timing/difference_constraints.hpp"

namespace rtv {

namespace {

/// Events whose firing time can influence t(a) or t(b): the union of the
/// two causal cones.
std::vector<int> relevant_cone(const Ces& ces, int a, int b) {
  std::vector<int> ca = ces.cone(a);
  const std::vector<int> cb = ces.cone(b);
  ca.insert(ca.end(), cb.begin(), cb.end());
  std::sort(ca.begin(), ca.end());
  ca.erase(std::unique(ca.begin(), ca.end()), ca.end());
  return ca;
}

}  // namespace

MaxSepResult max_separation(const Ces& ces, int a, int b,
                            std::size_t max_combinations) {
  MaxSepResult result;
  assert(a >= 0 && b >= 0);
  assert(static_cast<std::size_t>(a) < ces.size());
  assert(static_cast<std::size_t>(b) < ces.size());

  const std::vector<int> cone = relevant_cone(ces, a, b);
  // Map CES index -> variable index; the last variable is the time origin.
  std::vector<int> var(ces.size(), -1);
  for (std::size_t k = 0; k < cone.size(); ++k)
    var[static_cast<std::size_t>(cone[k])] = static_cast<int>(k);
  const int root = static_cast<int>(cone.size());
  const int n_vars = root + 1;

  // Events with several predecessors inside the cone need a choice of the
  // last-arriving one.
  std::vector<int> choice_events;
  std::size_t combos = 1;
  for (int v : cone) {
    const auto& preds = ces.events[static_cast<std::size_t>(v)].preds;
    if (preds.size() > 1) {
      choice_events.push_back(v);
      if (combos <= max_combinations) combos *= preds.size();
    }
  }

  if (combos > max_combinations) {
    // Conservative fallback: independent outer bounds.
    const CesBounds bounds = propagate_bounds(ces);
    const Time hi = bounds.latest[static_cast<std::size_t>(a)];
    const Time lo = bounds.earliest[static_cast<std::size_t>(b)];
    result.separation = (hi >= kTimeInfinity) ? kTimeInfinity : hi - lo;
    result.exact = false;
    result.combinations = 0;
    return result;
  }

  // Odometer over choice functions.
  std::vector<std::size_t> pick(choice_events.size(), 0);
  Time best = -kTimeInfinity;
  std::size_t explored = 0;
  bool done = false;
  while (!done) {
    ++explored;
    DiffSystem sys(n_vars);
    for (int v : cone) {
      const CesEvent& ev = ces.events[static_cast<std::size_t>(v)];
      const int tv = var[static_cast<std::size_t>(v)];
      if (ev.preds.empty()) {
        // Source: enabled at the time origin.
        sys.add_bounds(tv, root, ev.delay.lo(), ev.delay.hi());
        continue;
      }
      int chosen = ev.preds[0];
      if (ev.preds.size() > 1) {
        const auto it = std::find(choice_events.begin(), choice_events.end(), v);
        chosen = ev.preds[pick[static_cast<std::size_t>(
            it - choice_events.begin())]];
      }
      const int tc = var[static_cast<std::size_t>(chosen)];
      sys.add_bounds(tv, tc, ev.delay.lo(), ev.delay.hi());
      for (int q : ev.preds) {
        if (q == chosen) continue;
        // The chosen predecessor arrives last: t[q] <= t[chosen].
        sys.add(var[static_cast<std::size_t>(q)], tc, 0);
      }
    }
    const auto solved = sys.solve();
    if (solved.feasible) {
      const Time sep = sys.max_separation(var[static_cast<std::size_t>(a)],
                                          var[static_cast<std::size_t>(b)]);
      best = std::max(best, sep);
      if (best >= kTimeInfinity) break;
    }

    // Advance the odometer.
    done = true;
    for (std::size_t i = 0; i < pick.size(); ++i) {
      const std::size_t n_preds =
          ces.events[static_cast<std::size_t>(choice_events[i])].preds.size();
      if (++pick[i] < n_preds) {
        done = false;
        break;
      }
      pick[i] = 0;
    }
  }

  result.separation = best;
  result.exact = true;
  result.combinations = explored;
  return result;
}

bool always_strictly_before(const Ces& ces, int a, int b) {
  const MaxSepResult r = max_separation(ces, a, b);
  return r.separation < 0;
}

}  // namespace rtv
