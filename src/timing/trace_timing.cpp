#include "rtv/timing/trace_timing.hpp"

#include <algorithm>
#include <cassert>

#include "rtv/base/log.hpp"

namespace rtv {

namespace {
bool contains(const std::vector<EventId>& sorted, EventId e) {
  return std::binary_search(sorted.begin(), sorted.end(), e);
}
}  // namespace

TraceTimingModel::TraceTimingModel(const TransitionSystem& ts, const Trace& trace,
                                   EventId virtual_final,
                                   std::span<const ChokeRecord> chokes)
    : ts_(ts), trace_(trace), virtual_final_(virtual_final) {
  n_points_ = static_cast<int>(trace.steps.size()) + (virtual_final.valid() ? 1 : 0);

  choked_.reserve(chokes.size());
  for (const ChokeRecord& c : chokes)
    choked_.emplace_back(c.state.value(), c.event.value());
  std::sort(choked_.begin(), choked_.end());

  // Augment each point's enabled set with the events choked at its state:
  // a refused output is still ticking in its producer even though the
  // composed graph has no transition for it.
  if (!choked_.empty()) {
    augmented_.resize(static_cast<std::size_t>(n_points_));
    for (int k = 0; k < n_points_; ++k) {
      const StateId s = state_at(k);
      const auto lo = std::lower_bound(
          choked_.begin(), choked_.end(),
          std::make_pair(s.value(), EventId::underlying_type{0}));
      std::vector<EventId> extra;
      for (auto it = lo; it != choked_.end() && it->first == s.value(); ++it) {
        const EventId e(it->second);
        if (!contains(enabled_at(k), e)) extra.push_back(e);
      }
      if (extra.empty()) continue;
      std::vector<EventId> merged = enabled_at(k);
      merged.insert(merged.end(), extra.begin(), extra.end());
      std::sort(merged.begin(), merged.end());
      augmented_[static_cast<std::size_t>(k)] = std::move(merged);
    }
  }
}

bool TraceTimingModel::enabled_or_choked(StateId state, EventId event) const {
  if (ts_.is_enabled(state, event)) return true;
  return std::binary_search(choked_.begin(), choked_.end(),
                            std::make_pair(state.value(), event.value()));
}

EventId TraceTimingModel::fired(int point) const {
  if (point < static_cast<int>(trace_.steps.size()))
    return trace_.steps[static_cast<std::size_t>(point)].event;
  return virtual_final_;
}

StateId TraceTimingModel::state_at(int point) const {
  if (point < static_cast<int>(trace_.steps.size()))
    return trace_.steps[static_cast<std::size_t>(point)].state;
  return trace_.final_state;
}

const std::vector<EventId>& TraceTimingModel::enabled_at(int point) const {
  if (!augmented_.empty() && !augmented_[static_cast<std::size_t>(point)].empty())
    return augmented_[static_cast<std::size_t>(point)];
  if (point < static_cast<int>(trace_.steps.size()))
    return trace_.steps[static_cast<std::size_t>(point)].enabled;
  return trace_.final_enabled;
}

int TraceTimingModel::enabling_point(EventId event, int point) const {
  int m = point;
  while (m > 0) {
    const int p = m - 1;
    if (fired(p) == event) break;
    if (!contains(enabled_at(p), event)) break;
    --m;
  }
  return m;
}

bool TraceTimingModel::freshly_enabled_at(StateId state, EventId event) const {
  if (!preds_built_) {
    preds_.resize(ts_.num_states());
    for (std::size_t from = 0; from < ts_.num_states(); ++from) {
      for (const Transition& t : ts_.transitions_from(
               StateId(static_cast<StateId::underlying_type>(from)))) {
        preds_[t.target.value()].emplace_back(
            StateId(static_cast<StateId::underlying_type>(from)), t.event);
      }
    }
    preds_built_ = true;
  }
  for (const auto& [from, via] : preds_[state.value()]) {
    if (via == event) continue;  // the firing itself re-enables it freshly
    if (enabled_or_choked(from, event)) return false;
  }
  return true;
}

BuiltTraceSystem TraceTimingModel::build_system(int win_start, int win_last,
                                                bool clamped) const {
  assert(0 <= win_start && win_start <= win_last && win_last < n_points_);
  // Variables: v[k] = time of arrival at point k (k in [win_start..
  // win_last+1]); v[win_start] is the reference.  We allocate the full
  // range [0..n_points_] for simplicity — unused variables are harmless.
  BuiltTraceSystem built;
  built.system = DiffSystem(n_points_ + 1);
  DiffSystem& sys = built.system;

  auto tag_of = [&](TraceConstraintInfo info) {
    built.info.push_back(info);
    return static_cast<int>(built.info.size() - 1);
  };

  for (int k = win_start; k <= win_last; ++k) {
    // Monotonicity: v[k] <= v[k+1].
    sys.add(k, k + 1, 0,
            tag_of({TraceConstraintInfo::Kind::kMonotonic, k, k, EventId::invalid()}));

    // Firing bounds of the event fired at point k.
    const EventId e = fired(k);
    if (!e.valid()) continue;
    const DelayInterval d = ts_.delay(e);
    const int m = enabling_point(e, k);
    const bool exact =
        m > win_start ||
        (m == win_start &&
         (!clamped || freshly_enabled_at(state_at(win_start), e)));
    if (exact) {
      // Enabling resolved inside the window: exact bounds.
      sys.add(win_start, m, 0, -1);  // vacuous, keeps anchor referenced
      // lower: v[k+1] - v[m] >= lo
      sys.add(m, k + 1, -d.lo(),
              tag_of({TraceConstraintInfo::Kind::kFiringLower, k, m, e}));
      if (d.upper_bounded()) {
        sys.add(k + 1, m, d.hi(),
                tag_of({TraceConstraintInfo::Kind::kFiringUpper, k, m, e}));
      }
    } else if (d.upper_bounded()) {
      // Enabling predates the window: deadline can only be earlier than the
      // clamped one, so the clamped upper bound is sound; the lower bound
      // is dropped.
      sys.add(k + 1, win_start, d.hi(),
              tag_of({TraceConstraintInfo::Kind::kFiringUpper, k, win_start, e}));
    }

    // Deadlines of events pending while this firing happens.  A pending
    // event whose firing self-loops on the current state imposes nothing:
    // it can fire and re-arm freely between trace points (the untimed
    // search interns states, so those firings never appear as steps).
    for (EventId x : enabled_at(k)) {
      if (x == e) continue;
      const DelayInterval dx = ts_.delay(x);
      if (!dx.upper_bounded()) continue;
      if (dx.hi() > 0) {
        const std::optional<StateId> self = ts_.successor(state_at(k), x);
        if (self && *self == state_at(k)) continue;
      }
      const int mx = enabling_point(x, k);
      const int anchor = mx >= win_start ? mx : win_start;
      sys.add(k + 1, anchor, dx.hi(),
              tag_of({TraceConstraintInfo::Kind::kPendingDeadline, k, anchor, x}));
    }
  }
  return built;
}

bool TraceTimingModel::consistent() const {
  if (n_points_ == 0) return true;
  const BuiltTraceSystem built = build_system(0, n_points_ - 1, false);
  return built.system.solve().feasible;
}

std::optional<BanWindow> TraceTimingModel::find_ban_window() const {
  if (n_points_ == 0) return std::nullopt;
  const BuiltTraceSystem full = build_system(0, n_points_ - 1, false);
  const auto solved = full.system.solve();
  if (solved.feasible) return std::nullopt;

  // Points touched by the negative cycle.
  int w0 = n_points_ - 1;
  int last = 0;
  for (std::size_t ci : solved.core) {
    const int tag = full.system.constraints()[ci].tag;
    if (tag < 0) continue;
    const TraceConstraintInfo& info = full.info[static_cast<std::size_t>(tag)];
    w0 = std::min(w0, std::min(info.anchor, info.point));
    last = std::max(last, info.point);
  }

  // Try the anchored (history-independent) flavour starting at the cycle's
  // first point; widen leftwards while the clamped system stays feasible.
  for (int w = w0; w > 0; --w) {
    const BuiltTraceSystem clamped = build_system(w, last, true);
    if (!clamped.system.solve().feasible) {
      return BanWindow{false, w, last};
    }
  }
  // Fall back to a from-start ban: exact anchoring at time 0 over [0..last]
  // is infeasible because it contains the original cycle.
  return BanWindow{true, 0, last};
}

std::vector<DerivedOrdering> TraceTimingModel::explain(const BanWindow& win) const {
  std::vector<DerivedOrdering> out;
  const EventId blocked = fired(win.last_point);
  if (!blocked.valid()) return out;

  const BuiltTraceSystem base =
      build_system(win.anchor_point, win.last_point, !win.from_start);
  if (base.system.solve().feasible) return out;

  // Sufficiency analysis: an event x pending at the blocked point yields
  // the ordering "x before `blocked`" iff the window stays infeasible when
  // every *other* pending event's deadline constraints are dropped — x's
  // urgency alone forbids the blocked firing.  (A pure removal test would
  // miss redundantly-justified orderings.)
  for (EventId x : enabled_at(win.last_point)) {
    if (x == blocked) continue;
    DiffSystem reduced(base.system.num_vars());
    bool has_x_deadline = false;
    for (std::size_t ci = 0; ci < base.system.constraints().size(); ++ci) {
      const DiffConstraint& c = base.system.constraints()[ci];
      if (c.tag >= 0) {
        const TraceConstraintInfo& info = base.info[static_cast<std::size_t>(c.tag)];
        if (info.kind == TraceConstraintInfo::Kind::kPendingDeadline) {
          if (info.event != x) continue;  // drop other pending deadlines
          has_x_deadline = true;
        }
      }
      reduced.add(c.a, c.b, c.w, c.tag);
    }
    if (has_x_deadline && !reduced.solve().feasible) {
      out.push_back(DerivedOrdering{ts_.label(x), ts_.label(blocked)});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rtv
