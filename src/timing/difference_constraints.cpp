#include "rtv/timing/difference_constraints.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace rtv {

void DiffSystem::add(int a, int b, Time w, int tag) {
  assert(0 <= a && a < n_ && 0 <= b && b < n_);
  if (w >= kTimeInfinity) return;  // vacuous
  cs_.push_back(DiffConstraint{a, b, w, tag});
}

void DiffSystem::add_bounds(int a, int b, Time l, Time u, int tag) {
  // l <= t[a] - t[b]  ==  t[b] - t[a] <= -l
  add(b, a, -l, tag);
  add(a, b, u, tag);
}

DiffSystem::SolveResult DiffSystem::solve() const {
  SolveResult r;
  // Bellman-Ford from a virtual source connected to all vars with weight 0.
  std::vector<Time> dist(n_, 0);
  // Edge that last relaxed each var, for negative-cycle extraction.
  std::vector<std::ptrdiff_t> pred_edge(n_, -1);

  int updated_var = -1;
  for (int iter = 0; iter <= n_; ++iter) {
    updated_var = -1;
    for (std::size_t ci = 0; ci < cs_.size(); ++ci) {
      const DiffConstraint& c = cs_[ci];  // edge b -> a, weight w
      if (dist[c.b] + c.w < dist[c.a]) {
        dist[c.a] = dist[c.b] + c.w;
        pred_edge[c.a] = static_cast<std::ptrdiff_t>(ci);
        updated_var = c.a;
      }
    }
    if (updated_var < 0) break;
  }

  if (updated_var < 0) {
    r.feasible = true;
    r.solution = std::move(dist);
    return r;
  }

  // A relaxation happened on the n-th pass: walk predecessors n steps to
  // land inside a negative cycle, then collect it.
  int v = updated_var;
  for (int i = 0; i < n_; ++i) {
    assert(pred_edge[v] >= 0);
    v = cs_[static_cast<std::size_t>(pred_edge[v])].b;
  }
  const int cycle_start = v;
  do {
    const std::size_t e = static_cast<std::size_t>(pred_edge[v]);
    r.core.push_back(e);
    v = cs_[e].b;
  } while (v != cycle_start);
  std::reverse(r.core.begin(), r.core.end());
  r.feasible = false;
  return r;
}

Time DiffSystem::max_separation(int a, int b) const {
  // max(t[a]-t[b]) = shortest-path distance from b to a in the constraint
  // graph (edge b->a of weight w for each t[a]-t[b] <= w).
  std::vector<Time> dist(n_, kTimeInfinity);
  dist[b] = 0;
  for (int iter = 0; iter < n_; ++iter) {
    bool changed = false;
    for (const DiffConstraint& c : cs_) {
      if (dist[c.b] < kTimeInfinity && dist[c.b] + c.w < dist[c.a]) {
        dist[c.a] = dist[c.b] + c.w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist[a];
}

}  // namespace rtv
