// rtv — command-line front end.
//
//   rtv verify   a.g b.g ...   [--engine NAME] [--timeout S] [--max-states N]
//                              [--no-deadlock] [--no-persistency] [--max-ref N]
//                              [--progress]
//   rtv engines                (list the registered verification engines)
//   rtv simulate a.g b.g ...   [--events N] [--seed S] [--vcd out.vcd] [--signals s1,s2]
//   rtv dot      a.g           (marking graph as graphviz)
//   rtv minimize a.g           (bisimulation quotient statistics)
//   rtv ipcmos                 (the paper's five experiments)
//
// All .g inputs use the astg format with the library's `.delay` / `.initial`
// extensions (see rtv/stg/astg.hpp).  Multiple files compose over their
// shared signal alphabets.  `verify` runs any engine from engine_registry()
// ("refine" by default); all engines answer with the same unified verdict.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/sim/simulator.hpp"
#include "rtv/sim/waveform.hpp"
#include "rtv/stg/astg.hpp"
#include "rtv/stg/elaborate.hpp"
#include "rtv/ts/dot.hpp"
#include "rtv/ts/minimize.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/report.hpp"

using namespace rtv;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rtv verify   <stg.g>... [--engine NAME] [--timeout S] [--max-states N]\n"
               "                          [--no-deadlock] [--no-persistency] [--max-ref N]\n"
               "                          [--progress]\n"
               "  rtv engines\n"
               "  rtv simulate <stg.g>... [--events N] [--seed S] [--vcd FILE] [--signals a,b]\n"
               "  rtv dot      <stg.g>\n"
               "  rtv minimize <stg.g>\n"
               "  rtv ipcmos\n");
  return 2;
}

void list_engines(std::FILE* out) {
  for (const Engine* e : engine_registry().engines()) {
    std::fprintf(out, "  %-10s %s\n",
                 std::string(e->name()).c_str(),
                 std::string(e->description()).c_str());
  }
}

int cmd_engines() {
  std::printf("registered verification engines:\n");
  list_engines(stdout);
  return 0;
}

Stg load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return parse_astg(in);
}

/// Numeric flag values; a malformed or negative value is a usage error
/// (exit 2), not an uncaught exception or a silent 2^64 wrap-around.
std::size_t parse_size(const std::string& flag, const std::string& value) {
  if (!value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos) {
    try {
      return static_cast<std::size_t>(std::stoull(value));
    } catch (const std::exception&) {
    }
  }
  std::fprintf(stderr, "invalid value '%s' for %s\n", value.c_str(),
               flag.c_str());
  std::exit(2);
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos == value.size() && v >= 0.0) return v;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "invalid value '%s' for %s\n", value.c_str(),
               flag.c_str());
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct LoadedModules {
  std::vector<std::unique_ptr<Module>> owned;
  std::vector<const Module*> ptrs;
};

LoadedModules load_all(const std::vector<std::string>& files) {
  LoadedModules out;
  for (const std::string& f : files) {
    out.owned.push_back(std::make_unique<Module>(elaborate(load(f))));
    out.ptrs.push_back(out.owned.back().get());
    std::fprintf(stderr, "loaded %s: %zu states, %zu events\n",
                 out.owned.back()->name().c_str(),
                 out.owned.back()->ts().num_states(),
                 out.owned.back()->ts().num_events());
  }
  return out;
}

struct VerifyCliOptions {
  std::string engine = "refine";
  bool deadlock = true;
  bool persistency = true;
  std::size_t max_ref = 500;
  std::size_t max_states = 0;  // 0 = the engine's native default
  double timeout_seconds = 0.0;
  bool progress = false;
};

int cmd_verify(const std::vector<std::string>& files,
               const VerifyCliOptions& cli) {
  const Engine* engine = engine_registry().find(cli.engine);
  if (!engine) {
    std::fprintf(stderr, "unknown engine '%s'; registered engines:\n",
                 cli.engine.c_str());
    list_engines(stderr);
    return 2;
  }

  const LoadedModules mods = load_all(files);
  DeadlockFreedom dead;
  PersistencyProperty pers;
  std::vector<const SafetyProperty*> props;
  if (cli.deadlock) props.push_back(&dead);
  if (cli.persistency) props.push_back(&pers);

  EngineRequest req;
  req.modules = mods.ptrs;
  req.properties = props;
  req.budget.max_states = cli.max_states;
  req.budget.max_seconds = cli.timeout_seconds;
  req.max_refinements = cli.max_ref;
  if (cli.progress) {
    req.progress = [](const EngineProgress& p) {
      std::fprintf(stderr, "[%.*s] %zu states, %.1f s\n",
                   static_cast<int>(p.engine.size()), p.engine.data(),
                   p.states_explored, p.seconds);
    };
  }

  const EngineResult r = engine->run(req);
  std::printf("== verify (engine: %s) ==\n", cli.engine.c_str());
  std::printf("verdict:      %s\n", to_string(r.verdict));
  // Each engine counts its own exploration unit.
  if (const auto* zs = std::get_if<ZoneEngineStats>(&r.stats)) {
    std::printf("explored:     %zu zones (%zu discrete states)\n",
                r.states_explored, zs->discrete_states);
  } else if (const auto* ds = std::get_if<DiscreteEngineStats>(&r.stats)) {
    std::printf("explored:     %zu configs (%zu discrete states)\n",
                r.states_explored, ds->discrete_states);
  } else {
    std::printf("explored:     %zu states\n", r.states_explored);
  }
  std::printf("time:         %.3f s\n", r.seconds);
  if (!r.message.empty() && r.message != r.truncated_reason)
    std::printf("note:         %s\n", r.message.c_str());
  if (!r.truncated_reason.empty())
    std::printf("truncated:    %s\n", r.truncated_reason.c_str());
  if (!r.trace_labels.empty()) {
    std::printf("trace:       ");
    for (const std::string& l : r.trace_labels) std::printf(" %s", l.c_str());
    std::printf("\n");
  }
  if (const auto* st = std::get_if<RefineEngineStats>(&r.stats)) {
    std::printf("refinements:  %d\n", st->refinements);
    std::printf("composed:     %zu states\n", st->composed_states);
    if (r.verified() && !st->constraints.empty()) {
      std::printf("\nrelative timing constraints:\n");
      for (const std::string& c : st->constraints)
        std::printf("%s\n", c.c_str());
    }
  }
  return r.verified() ? 0 : 1;
}

int cmd_simulate(const std::vector<std::string>& files, std::size_t events,
                 std::uint64_t seed, const std::string& vcd,
                 const std::vector<std::string>& signals) {
  const LoadedModules mods = load_all(files);
  SimOptions opts;
  opts.max_events = events;
  opts.seed = seed;
  const SimTrace t = simulate_modules(mods.ptrs, opts);
  std::printf("%zu events over %.2f units%s\n", t.events.size(),
              units_from_ticks(t.end_time), t.deadlocked ? " (deadlock)" : "");
  for (const SimEvent& e : t.events) {
    std::printf("  %10.2f  %s\n", units_from_ticks(e.time), e.label.c_str());
  }
  TransitionSystem table;
  table.set_signal_names(t.signal_names);
  const std::vector<std::string> shown =
      signals.empty() ? t.signal_names : signals;
  std::printf("\n%s", ascii_waveform(table, t, shown).c_str());
  if (!vcd.empty()) {
    std::ofstream out(vcd);
    out << to_vcd(table, t, shown);
    std::printf("VCD written to %s\n", vcd.c_str());
  }
  return 0;
}

int cmd_dot(const std::string& file) {
  const Module m = elaborate(load(file));
  std::printf("%s", to_dot(m.ts()).c_str());
  return 0;
}

int cmd_minimize(const std::string& file) {
  const Module m = elaborate(load(file));
  const MinimizeResult r = minimize(m.ts());
  std::printf("%s: %zu reachable states -> %zu bisimulation classes\n",
              m.name().c_str(), m.ts().num_reachable_states(), r.num_blocks);
  std::printf("%s", to_dot(r.ts).c_str());
  return 0;
}

int cmd_ipcmos() {
  const auto rows = ipcmos::run_all_experiments();
  std::vector<ExperimentRow> table;
  for (const auto& row : rows) table.push_back(summarize(row.name, row.result));
  std::printf("%s", format_table(table).c_str());
  for (const auto& row : rows) {
    if (!row.result.verified()) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> files;
  VerifyCliOptions vopts;
  std::size_t events = 200;
  std::uint64_t seed = 1;
  std::string vcd;
  std::vector<std::string> signals;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--no-deadlock") {
      vopts.deadlock = false;
    } else if (arg == "--no-persistency") {
      vopts.persistency = false;
    } else if (arg == "--max-ref") {
      vopts.max_ref = parse_size(arg, next());
    } else if (arg == "--engine") {
      vopts.engine = next();
    } else if (arg == "--timeout") {
      vopts.timeout_seconds = parse_double(arg, next());
    } else if (arg == "--max-states") {
      vopts.max_states = parse_size(arg, next());
    } else if (arg == "--progress") {
      vopts.progress = true;
    } else if (arg == "--events") {
      events = parse_size(arg, next());
    } else if (arg == "--seed") {
      seed = parse_size(arg, next());
    } else if (arg == "--vcd") {
      vcd = next();
    } else if (arg == "--signals") {
      signals = split_csv(next());
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  try {
    if (cmd == "verify" && !files.empty()) return cmd_verify(files, vopts);
    if (cmd == "engines") return cmd_engines();
    if (cmd == "simulate" && !files.empty())
      return cmd_simulate(files, events, seed, vcd, signals);
    if (cmd == "dot" && files.size() == 1) return cmd_dot(files[0]);
    if (cmd == "minimize" && files.size() == 1) return cmd_minimize(files[0]);
    if (cmd == "ipcmos") return cmd_ipcmos();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
