// rtv — command-line front end.
//
//   rtv verify    a.g b.g ...  [--engine NAME] [--jobs N] [--timeout S]
//                              [--max-states N] [--no-deadlock]
//                              [--no-persistency] [--max-ref N] [--progress]
//                              (--jobs shards the engine's own frontier;
//                              0 = one worker per hardware thread)
//
// Observability flags accepted by every run-something subcommand (verify,
// suite, portfolio, fuzz, ipcmos, serve, client — see docs/OBSERVABILITY.md):
//   --trace FILE      write a Chrome trace-event / Perfetto JSON timeline of
//                     the whole command (one track per worker thread)
//   --progress-json   emit progress as JSON lines (with a metrics snapshot)
//                     on stderr instead of the human form
//   rtv suite     a.g b.g ...  [--engine NAME[,NAME...]] [--jobs N] [--json F]
//                              (each file is one obligation; batch-parallel)
//   rtv portfolio a.g b.g ...  [--engines NAME,NAME] [--jobs N] [--json F]
//                              (one obligation; engines race, first verdict wins)
//   rtv engines                (list the registered verification engines)
//   rtv lint      a.g b.g ...  [--engine NAME[,NAME...]] [--max-states N]
//                              [--no-deadlock] [--no-persistency] [--json F|-]
//                              (static model analysis, no engine runs; the
//                              files form one composed obligation; exit 0 =
//                              clean, 1 = warnings, 2 = errors)
//   rtv slice     a.g b.g ...  [--no-deadlock] [--no-persistency] [--json F|-]
//                              (cone-of-influence slice of the composed
//                              obligation: what the suite's slicer would
//                              drop, with full provenance; no engine runs)
//   rtv fuzz                   [--seed S] [--cases N] [--seconds S] [--jobs N]
//                              [--engines NAME,NAME] [--modules N] [--events N]
//                              [--max-delay T] [--properties N] [--config F]
//                              [--max-states N] [--timeout S] [--no-minimize]
//                              [--replay] [--json F]
//                              (differential fuzzing: every generated scenario
//                              runs through all selected engines; exit 1 iff a
//                              disagreement / bad trace / engine error is found)
//   rtv ipcmos                 [--engine NAME] [--jobs N] [--json F]
//   rtv serve                  --socket PATH [--cache F] [--jobs N]
//                              [--max-cache-entries N] [--heartbeat S]
//                              (persistent verification daemon with a
//                              content-addressed verdict cache; stop it with
//                              `rtv client --shutdown`, SIGINT or SIGTERM)
//   rtv client   a.g b.g ...   --socket PATH [--engines NAME,NAME] [--portfolio]
//                              [--timeout S] [--max-states N] [--max-ref N]
//                              [--no-deadlock] [--no-persistency] [--json F]
//   rtv client                 --socket PATH (--ping | --stats [--json F|-]
//                              | --metrics | --shutdown)
//                              (--metrics prints the daemon's registry in
//                              Prometheus text form; --stats --json - prints
//                              one JSON document with the stats counters and
//                              the daemon's metrics snapshot)
//   rtv simulate a.g b.g ...   [--events N] [--seed S] [--vcd out.vcd] [--signals s1,s2]
//   rtv dot      a.g           (marking graph as graphviz)
//   rtv minimize a.g           (bisimulation quotient statistics)
//
// All .g inputs use the astg format with the library's `.delay` / `.initial`
// extensions (see rtv/stg/astg.hpp).  For `verify` and `portfolio`, multiple
// files compose over their shared signal alphabets; for `suite`, every file
// is an independent obligation.
//
// Exit codes (stable, for scripted/CI callers — see docs/CLI.md):
//   0 = verified, 1 = violated, 2 = inconclusive,
//   64 = usage error (bad flags, unknown engine, no input),
//   70 = runtime failure (unreadable input, I/O error).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "rtv/analysis/slice.hpp"
#include "rtv/base/json.hpp"
#include "rtv/fuzz/campaign.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/obs/metrics.hpp"
#include "rtv/obs/trace.hpp"
#include "rtv/serve/client.hpp"
#include "rtv/serve/server.hpp"
#include "rtv/sim/simulator.hpp"
#include "rtv/sim/waveform.hpp"
#include "rtv/stg/astg.hpp"
#include "rtv/stg/elaborate.hpp"
#include "rtv/ts/dot.hpp"
#include "rtv/ts/minimize.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/report.hpp"
#include "rtv/verify/suite.hpp"

using namespace rtv;

namespace {

/// BSD sysexits-style codes for the non-verdict outcomes, so 0/1/2 stay
/// reserved for verdicts.
constexpr int kExitUsage = 64;
constexpr int kExitRuntime = 70;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rtv verify    <stg.g>... [--engine NAME] [--jobs N] [--timeout S]\n"
      "                           [--max-states N] [--no-deadlock]\n"
      "                           [--no-persistency] [--max-ref N] [--progress]\n"
      "                           [--progress-json] [--trace FILE]\n"
      "  rtv suite     <stg.g>... [--engine NAME[,NAME...]] [--jobs N] [--json FILE]\n"
      "                           [--timeout S] [--max-states N] [--no-deadlock]\n"
      "                           [--no-persistency] [--max-ref N] [--progress]\n"
      "  rtv portfolio <stg.g>... [--engines NAME,NAME...] [--jobs N] [--json FILE]\n"
      "                           [--timeout S] [--max-states N] [--no-deadlock]\n"
      "                           [--no-persistency] [--max-ref N] [--progress]\n"
      "  rtv engines\n"
      "  rtv lint      <stg.g>... [--engine NAME[,NAME...]] [--max-states N]\n"
      "                           [--no-deadlock] [--no-persistency] [--json FILE|-]\n"
      "                           (exit: 0 clean, 1 warnings, 2 errors)\n"
      "  rtv slice     <stg.g>... [--no-deadlock] [--no-persistency] [--json FILE|-]\n"
      "                           (cone-of-influence slice of the composed\n"
      "                           obligation; exit 0 = sliced/identity)\n"
      "  rtv fuzz                 [--seed S] [--cases N] [--seconds S] [--jobs N]\n"
      "                           [--engines NAME,NAME...] [--modules N] [--events N]\n"
      "                           [--max-delay TICKS] [--properties N] [--config FILE]\n"
      "                           [--padding-modules N] [--max-states N] [--timeout S]\n"
      "                           [--no-minimize] [--replay] [--json FILE]\n"
      "  rtv ipcmos               [--engine NAME[,NAME...]] [--jobs N] [--json FILE]\n"
      "  rtv serve                --socket PATH [--cache FILE] [--jobs N]\n"
      "                           [--max-cache-entries N] [--heartbeat S]\n"
      "  rtv client    <stg.g>... --socket PATH [--engines NAME,NAME...] [--portfolio]\n"
      "                           [--compose] [--timeout S] [--max-states N]\n"
      "                           [--max-ref N] [--no-deadlock] [--no-persistency]\n"
      "                           [--json FILE]\n"
      "  rtv client               --socket PATH (--ping | --stats [--json FILE|-]\n"
      "                           | --metrics | --shutdown)\n"
      "  (all run subcommands also accept --trace FILE and --progress-json)\n"
      "  rtv simulate  <stg.g>... [--events N] [--seed S] [--vcd FILE] [--signals a,b]\n"
      "  rtv dot       <stg.g>\n"
      "  rtv minimize  <stg.g>\n"
      "exit codes: 0 verified, 1 violated, 2 inconclusive, 64 usage, 70 failure\n");
  return kExitUsage;
}

void list_engines(std::FILE* out) {
  for (const Engine* e : engine_registry().engines()) {
    std::fprintf(out, "  %-10s %s\n",
                 std::string(e->name()).c_str(),
                 std::string(e->description()).c_str());
  }
}

int cmd_engines() {
  std::printf("registered verification engines:\n");
  list_engines(stdout);
  return 0;
}

Stg load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return parse_astg(in);
}

/// Numeric flag values; a malformed or negative value is a usage error
/// (exit 64), not an uncaught exception or a silent 2^64 wrap-around.
std::size_t parse_size(const std::string& flag, const std::string& value) {
  if (!value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos) {
    try {
      return static_cast<std::size_t>(std::stoull(value));
    } catch (const std::exception&) {
    }
  }
  std::fprintf(stderr, "invalid value '%s' for %s\n", value.c_str(),
               flag.c_str());
  std::exit(kExitUsage);
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos == value.size() && v >= 0.0) return v;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "invalid value '%s' for %s\n", value.c_str(),
               flag.c_str());
  std::exit(kExitUsage);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct LoadedModules {
  std::vector<std::unique_ptr<Module>> owned;
  std::vector<const Module*> ptrs;
};

LoadedModules load_all(const std::vector<std::string>& files) {
  LoadedModules out;
  for (const std::string& f : files) {
    out.owned.push_back(std::make_unique<Module>(elaborate(load(f))));
    out.ptrs.push_back(out.owned.back().get());
    std::fprintf(stderr, "loaded %s: %zu states, %zu events\n",
                 out.owned.back()->name().c_str(),
                 out.owned.back()->ts().num_states(),
                 out.owned.back()->ts().num_events());
  }
  return out;
}

struct VerifyCliOptions {
  /// Engine selection (CSV accepted); empty keeps the subcommand default.
  std::vector<std::string> engines;
  bool deadlock = true;
  bool persistency = true;
  std::size_t max_ref = 500;
  std::size_t max_states = 0;  // 0 = the engine's native default
  double timeout_seconds = 0.0;
  bool progress = false;
  bool progress_json = false;  ///< progress as JSON lines (implies --progress)
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string json_path;
  std::string trace_path;  ///< Chrome trace-event JSON destination; "" = off
};

/// Resolve the requested engine names, or print the registry and fail with
/// a usage error — scripted callers distinguish this (64) from verdicts.
bool engines_exist(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    if (!engine_registry().find(name)) {
      std::fprintf(stderr, "unknown engine '%s'; registered engines:\n",
                   name.c_str());
      list_engines(stderr);
      return false;
    }
  }
  return true;
}

/// Human progress lines, or (`--progress-json`) one JSON object per fire
/// with the metrics snapshot spliced in — scrapeable mid-run telemetry
/// without waiting for the final report.  Both write to stderr so stdout
/// stays the report channel.
ProgressFn progress_printer(bool json_lines) {
  if (!json_lines) {
    return [](const EngineProgress& p) {
      std::fprintf(stderr, "[%.*s] %zu states, %.1f s\n",
                   static_cast<int>(p.engine.size()), p.engine.data(),
                   p.states_explored, p.seconds);
    };
  }
  return [](const EngineProgress& p) {
    std::string line = "{\"engine\":\"";
    line.append(p.engine);
    line += "\",\"states_explored\":";
    line += std::to_string(p.states_explored);
    char sec[32];
    std::snprintf(sec, sizeof sec, "%.3f", p.seconds);
    line += ",\"seconds\":";
    line += sec;
    if (p.metrics) {
      line += ",\"metrics\":";
      obs::append_json(line, *p.metrics);
    }
    line += "}";
    std::fprintf(stderr, "%s\n", line.c_str());
  };
}

/// Write a JSON document; I/O failures are runtime errors (70), not
/// verdicts.
bool write_text(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  out << json;
  out.flush();  // surface buffered write errors (disk full) before testing
  if (!out) {
    std::fprintf(stderr, "error: cannot write JSON report to %s\n",
                 path.c_str());
    return false;
  }
  std::fprintf(stderr, "JSON report written to %s\n", path.c_str());
  return true;
}

SuiteOptions suite_options(const VerifyCliOptions& cli, SuiteMode mode) {
  SuiteOptions opts;
  opts.mode = mode;
  opts.jobs = cli.jobs;
  opts.engines = cli.engines;
  opts.budget.max_states = cli.max_states;
  opts.budget.max_seconds = cli.timeout_seconds;
  opts.max_refinements = cli.max_ref;
  if (cli.progress || cli.progress_json)
    opts.progress = progress_printer(cli.progress_json);
  return opts;
}

int finish_suite(const SuiteReport& report, const VerifyCliOptions& cli) {
  std::printf("%s", format_table(report).c_str());
  if (!cli.json_path.empty() && !write_text(report.to_json(), cli.json_path))
    return kExitRuntime;
  return exit_code(report.overall());
}

int cmd_verify(const std::vector<std::string>& files,
               const VerifyCliOptions& cli) {
  if (cli.engines.size() > 1) {
    std::fprintf(stderr,
                 "verify runs a single engine; use 'suite' or 'portfolio' "
                 "for several\n");
    return kExitUsage;
  }
  const std::string name = cli.engines.empty() ? "refine" : cli.engines[0];
  if (!engines_exist({name})) return kExitUsage;
  const Engine* engine = engine_registry().find(name);

  const LoadedModules mods = load_all(files);
  DeadlockFreedom dead;
  PersistencyProperty pers;
  std::vector<const SafetyProperty*> props;
  if (cli.deadlock) props.push_back(&dead);
  if (cli.persistency) props.push_back(&pers);

  EngineRequest req;
  req.modules = mods.ptrs;
  req.properties = props;
  req.budget.max_states = cli.max_states;
  req.budget.max_seconds = cli.timeout_seconds;
  req.max_refinements = cli.max_ref;
  req.jobs = cli.jobs;  // 0 (the default) = one worker per hardware thread
  if (cli.progress || cli.progress_json)
    req.progress = progress_printer(cli.progress_json);

  const EngineResult r = engine->run(req);
  std::printf("== verify (engine: %s) ==\n", name.c_str());
  std::printf("verdict:      %s\n", to_string(r.verdict));
  // Each engine counts its own exploration unit.
  if (const auto* zs = std::get_if<ZoneEngineStats>(&r.stats)) {
    std::printf("explored:     %zu zones (%zu discrete states)\n",
                r.states_explored, zs->discrete_states);
  } else if (const auto* ds = std::get_if<DiscreteEngineStats>(&r.stats)) {
    std::printf("explored:     %zu configs (%zu discrete states)\n",
                r.states_explored, ds->discrete_states);
  } else {
    std::printf("explored:     %zu states\n", r.states_explored);
  }
  std::printf("time:         %.3f s\n", r.seconds);
  if (!r.message.empty() && r.message != r.truncated_reason)
    std::printf("note:         %s\n", r.message.c_str());
  if (!r.truncated_reason.empty())
    std::printf("truncated:    %s\n", r.truncated_reason.c_str());
  if (!r.trace_labels.empty()) {
    std::printf("trace:       ");
    for (const std::string& l : r.trace_labels) std::printf(" %s", l.c_str());
    std::printf("\n");
  }
  if (const auto* st = std::get_if<RefineEngineStats>(&r.stats)) {
    std::printf("refinements:  %d\n", st->refinements);
    std::printf("composed:     %zu states\n", st->composed_states);
    if (r.verified() && !st->constraints.empty()) {
      std::printf("\nrelative timing constraints:\n");
      for (const std::string& c : st->constraints)
        std::printf("%s\n", c.c_str());
    }
  }
  return exit_code(r.verdict);
}

int cmd_suite(const std::vector<std::string>& files,
              const VerifyCliOptions& cli) {
  if (!engines_exist(cli.engines)) return kExitUsage;

  // Every input file is one independent (closed-system) obligation, named
  // by its path so scripted callers can key the JSON records.
  Suite suite;
  const SafetyProperty* dead =
      cli.deadlock ? suite.own(std::make_unique<DeadlockFreedom>()) : nullptr;
  const SafetyProperty* pers =
      cli.persistency ? suite.own(std::make_unique<PersistencyProperty>())
                      : nullptr;
  for (const std::string& f : files) {
    const Module* m = suite.own(elaborate(load(f)));
    std::fprintf(stderr, "loaded %s: %zu states, %zu events\n",
                 m->name().c_str(), m->ts().num_states(),
                 m->ts().num_events());
    std::vector<const SafetyProperty*> props;
    if (dead) props.push_back(dead);
    if (pers) props.push_back(pers);
    Obligation& ob = suite.add(f, {m}, props);
    ob.max_refinements = cli.max_ref;
  }

  const SuiteReport report =
      run_suite(suite, suite_options(cli, SuiteMode::kBatch));
  return finish_suite(report, cli);
}

int cmd_portfolio(const std::vector<std::string>& files,
                  const VerifyCliOptions& cli) {
  if (!engines_exist(cli.engines)) return kExitUsage;

  // One obligation: the composition of every input file, raced by the
  // selected engines (all registered engines by default).
  Suite suite;
  std::vector<const Module*> modules;
  std::string name;
  for (const std::string& f : files) {
    const Module* m = suite.own(elaborate(load(f)));
    std::fprintf(stderr, "loaded %s: %zu states, %zu events\n",
                 m->name().c_str(), m->ts().num_states(),
                 m->ts().num_events());
    modules.push_back(m);
    if (!name.empty()) name += " || ";
    name += m->name();
  }
  std::vector<const SafetyProperty*> props;
  if (cli.deadlock) props.push_back(suite.own(std::make_unique<DeadlockFreedom>()));
  if (cli.persistency)
    props.push_back(suite.own(std::make_unique<PersistencyProperty>()));
  Obligation& ob = suite.add(std::move(name), std::move(modules), props);
  ob.max_refinements = cli.max_ref;

  const SuiteReport report =
      run_suite(suite, suite_options(cli, SuiteMode::kPortfolio));
  return finish_suite(report, cli);
}

int cmd_lint(const std::vector<std::string>& files,
             const VerifyCliOptions& cli) {
  if (!engines_exist(cli.engines)) return kExitUsage;

  // The files form one composed obligation, mirroring `rtv verify` /
  // `rtv portfolio`: shared labels synchronise, and the same default
  // properties apply.  No engine runs — the exit code reports the lint
  // verdict, not a verification verdict.
  const LoadedModules mods = load_all(files);
  DeadlockFreedom dead;
  PersistencyProperty pers;
  std::vector<const SafetyProperty*> props;
  if (cli.deadlock) props.push_back(&dead);
  if (cli.persistency) props.push_back(&pers);

  lint::LintOptions opts;
  opts.engines = cli.engines;  // empty = every engine-specific check armed
  opts.max_states = cli.max_states;
  const lint::LintReport report = lint::lint_modules(mods.ptrs, props, opts);

  if (cli.json_path == "-") {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.format().c_str());
    if (!cli.json_path.empty() &&
        !write_text(report.to_json(), cli.json_path))
      return kExitRuntime;
  }
  return report.exit_code();
}

/// Machine-readable slice report; schema mirrors the library's other JSON
/// documents (stable tag + version, see docs/CLI.md).
std::string slice_to_json(const analysis::SliceResult& sl,
                          std::size_t total_modules) {
  std::string out = "{\"schema\":";
  json::append_string(out, "rtv-slice-report");
  out += ",\"schema_version\":1";
  out += ",\"modules\":" + std::to_string(total_modules);
  out += ",\"kept\":[";
  for (std::size_t i = 0; i < sl.modules.size(); ++i) {
    if (i) out += ",";
    json::append_string(out, sl.modules[i]->name());
  }
  out += "],\"identity\":";
  out += sl.identity ? "true" : "false";
  out += ",\"dropped_modules\":" + std::to_string(sl.dropped_modules);
  out += ",\"dropped_events\":" + std::to_string(sl.dropped_events);
  out += ",\"pruned_states\":" + std::to_string(sl.pruned_states);
  if (!sl.bailout.empty()) {
    out += ",\"bailout\":";
    json::append_string(out, sl.bailout);
  }
  out += ",\"notes\":[";
  for (std::size_t i = 0; i < sl.notes.size(); ++i) {
    if (i) out += ",";
    const analysis::SliceNote& n = sl.notes[i];
    out += "{\"kind\":";
    json::append_string(out, n.kind);
    out += ",\"module\":";
    json::append_string(out, n.module);
    out += ",\"object\":";
    json::append_string(out, n.object);
    out += ",\"reason\":";
    json::append_string(out, n.reason);
    out += "}";
  }
  out += "]}";
  return out;
}

int cmd_slice(const std::vector<std::string>& files,
              const VerifyCliOptions& cli) {
  // Like `rtv lint`, the files form one composed obligation with the
  // default properties; the output is what `run_suite` would hand the
  // engines after slicing, plus the provenance of everything removed.
  const LoadedModules mods = load_all(files);
  DeadlockFreedom dead;
  PersistencyProperty pers;
  std::vector<const SafetyProperty*> props;
  if (cli.deadlock) props.push_back(&dead);
  if (cli.persistency) props.push_back(&pers);

  const analysis::SliceResult sl = analysis::slice(mods.ptrs, props);

  if (cli.json_path == "-") {
    std::printf("%s\n", slice_to_json(sl, mods.ptrs.size()).c_str());
    return 0;
  }
  std::printf("== slice ==\n");
  if (!sl.bailout.empty()) {
    std::printf("identity (bailout): %s\n", sl.bailout.c_str());
  } else if (sl.identity) {
    std::printf("identity: nothing is provably outside the cone\n");
  } else {
    std::printf("kept:          %zu of %zu module(s)\n", sl.modules.size(),
                mods.ptrs.size());
    std::printf("dropped:       %zu module(s), %zu event(s)\n",
                sl.dropped_modules, sl.dropped_events);
    std::printf("pruned:        %zu unreachable state(s)\n",
                sl.pruned_states);
  }
  for (const analysis::SliceNote& n : sl.notes) {
    if (n.kind == "bailout") continue;  // already printed above
    if (n.module.empty()) {
      std::printf("  [%s] %s\n", n.kind.c_str(), n.reason.c_str());
    } else if (n.object.empty()) {
      std::printf("  [%s] %s: %s\n", n.kind.c_str(), n.module.c_str(),
                  n.reason.c_str());
    } else {
      std::printf("  [%s] %s/%s: %s\n", n.kind.c_str(), n.module.c_str(),
                  n.object.c_str(), n.reason.c_str());
    }
  }
  if (!cli.json_path.empty() &&
      !write_text(slice_to_json(sl, mods.ptrs.size()), cli.json_path))
    return kExitRuntime;
  return 0;
}

int cmd_simulate(const std::vector<std::string>& files, std::size_t events,
                 std::uint64_t seed, const std::string& vcd,
                 const std::vector<std::string>& signals) {
  const LoadedModules mods = load_all(files);
  SimOptions opts;
  opts.max_events = events;
  opts.seed = seed;
  const SimTrace t = simulate_modules(mods.ptrs, opts);
  std::printf("%zu events over %.2f units%s\n", t.events.size(),
              units_from_ticks(t.end_time), t.deadlocked ? " (deadlock)" : "");
  for (const SimEvent& e : t.events) {
    std::printf("  %10.2f  %s\n", units_from_ticks(e.time), e.label.c_str());
  }
  TransitionSystem table;
  table.set_signal_names(t.signal_names);
  const std::vector<std::string> shown =
      signals.empty() ? t.signal_names : signals;
  std::printf("\n%s", ascii_waveform(table, t, shown).c_str());
  if (!vcd.empty()) {
    std::ofstream out(vcd);
    out << to_vcd(table, t, shown);
    std::printf("VCD written to %s\n", vcd.c_str());
  }
  return 0;
}

int cmd_dot(const std::string& file) {
  const Module m = elaborate(load(file));
  std::printf("%s", to_dot(m.ts()).c_str());
  return 0;
}

int cmd_minimize(const std::string& file) {
  const Module m = elaborate(load(file));
  const MinimizeResult r = minimize(m.ts());
  std::printf("%s: %zu reachable states -> %zu bisimulation classes\n",
              m.name().c_str(), m.ts().num_reachable_states(), r.num_blocks);
  std::printf("%s", to_dot(r.ts).c_str());
  return 0;
}

int cmd_ipcmos(const VerifyCliOptions& cli) {
  if (!engines_exist(cli.engines)) return kExitUsage;
  const Suite suite = ipcmos::table1_suite();
  const SuiteReport report =
      run_suite(suite, suite_options(cli, SuiteMode::kBatch));
  // The paper's table shape: refinement counts per experiment.
  std::printf("%s", format_table(rows_from(report)).c_str());
  if (!cli.json_path.empty() && !write_text(report.to_json(), cli.json_path))
    return kExitRuntime;
  return exit_code(report.overall());
}

// ---------------------------------------------------------------------------
// serve / client — the persistent verification service (rtv/serve/)
// ---------------------------------------------------------------------------

struct ServeCliOptions {
  std::string socket_path;
  std::string cache_path;
  std::size_t max_cache_entries = 4096;
  double heartbeat_seconds = 0.0;
  bool portfolio = false;
  /// Compose every input file into ONE obligation (the `rtv verify` /
  /// `rtv portfolio` shape) instead of one obligation per file.
  bool compose = false;
  bool ping = false;
  bool stats = false;
  bool metrics = false;
  bool shutdown = false;
};

volatile std::sig_atomic_t g_stop_signal = 0;
void on_stop_signal(int) { g_stop_signal = 1; }

int cmd_serve(const ServeCliOptions& scli, const VerifyCliOptions& cli) {
  if (scli.socket_path.empty()) {
    std::fprintf(stderr, "serve requires --socket PATH\n");
    return kExitUsage;
  }
  serve::ServerOptions opts;
  opts.socket_path = scli.socket_path;
  opts.cache_path = scli.cache_path;
  opts.jobs = cli.jobs;
  opts.max_cache_entries = scli.max_cache_entries;
  opts.heartbeat_seconds = scli.heartbeat_seconds;
  opts.log = [](const std::string& line) {
    std::fprintf(stderr, "rtv serve: %s\n", line.c_str());
  };
  serve::Server server(opts);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  server.start();
  while (!server.wait_for(0.25) && !g_stop_signal) {
  }
  server.stop();
  const serve::ServeStats s = server.stats();
  std::fprintf(stderr,
               "rtv serve: stopped after %.1f s — %llu request(s), "
               "%llu obligation(s): %llu cache hit(s), %llu deduped, "
               "%llu computed\n",
               s.uptime_seconds, static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.obligations),
               static_cast<unsigned long long>(s.cache_hits),
               static_cast<unsigned long long>(s.deduped),
               static_cast<unsigned long long>(s.computed));
  return 0;
}

int cmd_client(const std::vector<std::string>& files,
               const ServeCliOptions& scli, const VerifyCliOptions& cli) {
  if (scli.socket_path.empty()) {
    std::fprintf(stderr, "client requires --socket PATH\n");
    return kExitUsage;
  }
  serve::Client client;
  client.connect(scli.socket_path);

  if (scli.ping) {
    const bool ok = client.ping();
    std::printf("%s\n", ok ? "pong" : "ping failed");
    return ok ? 0 : kExitRuntime;
  }
  if (scli.metrics) {
    std::printf("%s", client.get_metrics().c_str());
    return 0;
  }
  if (scli.stats) {
    // Fetch via call() rather than get_stats() so the optional metrics_json
    // payload survives for --json output.
    serve::ServeRequest sreq;
    sreq.kind = serve::RequestKind::kStats;
    const serve::ServeResponse sresp = client.call(sreq);
    if (!sresp.ok || !sresp.has_stats) {
      std::fprintf(stderr, "error from daemon: %s\n", sresp.error.c_str());
      return kExitRuntime;
    }
    const serve::ServeStats& s = sresp.stats;
    if (!cli.json_path.empty()) {
      // One machine-readable document: the wire stats counters plus the
      // daemon's full metrics snapshot when it has metrics enabled.
      std::string out = "{\"stats\":";
      serve::stats_to_json(out, s);
      if (!sresp.metrics_json.empty()) {
        out += ",\"metrics\":";
        out += sresp.metrics_json;
      }
      out += "}\n";
      if (cli.json_path == "-") {
        std::fputs(out.c_str(), stdout);
      } else if (!write_text(out, cli.json_path)) {
        return kExitRuntime;
      }
      return 0;
    }
    std::printf("uptime:          %.1f s\n", s.uptime_seconds);
    std::printf("jobs:            %llu\n",
                static_cast<unsigned long long>(s.jobs));
    std::printf("requests:        %llu\n",
                static_cast<unsigned long long>(s.requests));
    std::printf("obligations:     %llu\n",
                static_cast<unsigned long long>(s.obligations));
    std::printf("cache hits:      %llu\n",
                static_cast<unsigned long long>(s.cache_hits));
    std::printf("deduped:         %llu\n",
                static_cast<unsigned long long>(s.deduped));
    std::printf("computed:        %llu\n",
                static_cast<unsigned long long>(s.computed));
    std::printf("lint rejected:   %llu\n",
                static_cast<unsigned long long>(s.lint_rejected));
    std::printf("errors:          %llu\n",
                static_cast<unsigned long long>(s.errors));
    std::printf("cache entries:   %llu\n",
                static_cast<unsigned long long>(s.cache_entries));
    std::printf("cache evictions: %llu\n",
                static_cast<unsigned long long>(s.cache_evictions));
    return 0;
  }
  if (scli.shutdown) {
    client.request_shutdown();
    std::printf("shutdown requested\n");
    return 0;
  }

  if (files.empty()) return usage();
  serve::ServeRequest req;
  req.kind = serve::RequestKind::kVerify;
  req.mode = scli.portfolio ? SuiteMode::kPortfolio : SuiteMode::kBatch;
  req.engines = cli.engines;
  req.max_states = cli.max_states;
  req.max_seconds = cli.timeout_seconds;
  req.max_refinements = cli.max_ref;
  if (scli.compose) {
    // One obligation composing every file over shared labels — the same
    // shape `rtv verify`/`rtv portfolio` check locally.  Because the
    // daemon keys its cache on the *sliced* canonical form, two composed
    // requests differing only in out-of-cone padding share one entry.
    serve::WireObligation ob;
    for (const std::string& f : files) {
      ob.modules.push_back(elaborate(load(f)));
      if (!ob.name.empty()) ob.name += " || ";
      ob.name += ob.modules.back().name();
    }
    if (cli.deadlock) ob.properties.push_back(serve::PropertySpec::deadlock());
    if (cli.persistency)
      ob.properties.push_back(serve::PropertySpec::persistency());
    req.obligations.push_back(std::move(ob));
  } else {
    for (const std::string& f : files) {
      serve::WireObligation ob;
      ob.name = f;
      ob.modules.push_back(elaborate(load(f)));
      if (cli.deadlock)
        ob.properties.push_back(serve::PropertySpec::deadlock());
      if (cli.persistency)
        ob.properties.push_back(serve::PropertySpec::persistency());
      req.obligations.push_back(std::move(ob));
    }
  }

  const serve::ServeResponse resp = client.call(req);
  if (!resp.ok) {
    std::fprintf(stderr, "error from daemon: %s\n", resp.error.c_str());
    return kExitRuntime;
  }
  if (!resp.has_report) {
    std::fprintf(stderr, "error: verify response carries no report\n");
    return kExitRuntime;
  }
  std::size_t hits = 0;
  for (const SuiteRecord& rec : resp.report.records)
    if (rec.cached) ++hits;
  std::fprintf(stderr, "%zu of %zu record(s) served from cache\n", hits,
               resp.report.records.size());
  return finish_suite(resp.report, cli);
}

// ---------------------------------------------------------------------------
// fuzz — the differential campaign (rtv/fuzz/campaign.hpp)
// ---------------------------------------------------------------------------

int cmd_fuzz(fuzz::CampaignOptions opt, bool replay,
             const std::string& json_path) {
  if (!engines_exist(opt.engines)) return kExitUsage;
  if (opt.engines.size() < 2 && !replay) {
    std::fprintf(stderr,
                 "fuzz compares engine verdicts; select at least two with "
                 "--engines\n");
    return kExitUsage;
  }
  opt.log = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };

  if (replay) {
    // --seed is the *case* seed here (as printed in a failure's
    // reproducer line), not a campaign seed.
    const fuzz::CaseResult r = fuzz::run_case(opt.seed, opt.config, opt);
    std::printf("== fuzz replay (seed %llu) ==\n",
                static_cast<unsigned long long>(opt.seed));
    std::printf("config:   %s\n", opt.config.to_json().c_str());
    if (!r.failure) {
      std::printf(
          "agreed:   %zu definitive verdict(s), %zu trace(s) replayed\n",
          r.definitive, r.traces_replayed);
      return 0;
    }
    std::printf("FAILURE:  %s — %s\n", fuzz::to_string(r.failure->kind),
                r.failure->detail.c_str());
    return 1;
  }

  const fuzz::CampaignReport report = fuzz::run_campaign(opt);
  std::printf("== fuzz campaign ==\n");
  std::printf("seed:       %llu\n",
              static_cast<unsigned long long>(report.seed));
  std::printf("config:     %s\n", report.config.to_json().c_str());
  std::printf("cases:      %zu (%zu definitive verdicts, %zu traces replayed)\n",
              report.cases, report.definitive_verdicts,
              report.traces_replayed);
  std::printf("time:       %.1f s\n", report.wall_seconds);
  std::printf("failures:   %zu\n", report.failures.size());
  for (const fuzz::CampaignFailure& f : report.failures) {
    std::printf("  case %zu: %s — %s\n", f.case_index,
                fuzz::to_string(f.kind), f.detail.c_str());
    std::printf("    replay: rtv fuzz --replay --seed %llu --config <file "
                "holding: %s>\n",
                static_cast<unsigned long long>(f.seed),
                f.minimized.to_json().c_str());
  }
  if (!json_path.empty() && !write_text(report.to_json(), json_path))
    return kExitRuntime;
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> files;
  VerifyCliOptions vopts;
  std::size_t events = 200;
  std::uint64_t seed = 1;
  std::string vcd;
  std::vector<std::string> signals;
  fuzz::CampaignOptions fuzz_opt;
  fuzz_opt.jobs = 0;  // CLI default: one worker per hardware thread
  bool fuzz_replay = false;
  bool fuzz_cases_set = false;
  ServeCliOptions serve_opt;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--no-deadlock") {
      vopts.deadlock = false;
    } else if (arg == "--no-persistency") {
      vopts.persistency = false;
    } else if (arg == "--max-ref") {
      vopts.max_ref = parse_size(arg, next());
    } else if (arg == "--engine" || arg == "--engines") {
      for (std::string& name : split_csv(next()))
        vopts.engines.push_back(std::move(name));
    } else if (arg == "--timeout") {
      vopts.timeout_seconds = parse_double(arg, next());
    } else if (arg == "--max-states") {
      vopts.max_states = parse_size(arg, next());
    } else if (arg == "--progress") {
      vopts.progress = true;
    } else if (arg == "--progress-json") {
      vopts.progress_json = true;
    } else if (arg == "--trace") {
      vopts.trace_path = next();
    } else if (arg == "--jobs") {
      vopts.jobs = parse_size(arg, next());
    } else if (arg == "--json") {
      vopts.json_path = next();
    } else if (arg == "--events") {
      events = parse_size(arg, next());
      fuzz_opt.config.events = static_cast<std::uint32_t>(events);
    } else if (arg == "--seed") {
      seed = parse_size(arg, next());
    } else if (arg == "--cases") {
      fuzz_opt.cases = parse_size(arg, next());
      fuzz_cases_set = true;
    } else if (arg == "--seconds") {
      fuzz_opt.seconds = parse_double(arg, next());
      // A time-bounded campaign runs until the deadline unless the user
      // also capped the cases explicitly.
      if (!fuzz_cases_set) fuzz_opt.cases = 0;
    } else if (arg == "--modules") {
      fuzz_opt.config.modules =
          static_cast<std::uint32_t>(parse_size(arg, next()));
    } else if (arg == "--max-delay") {
      fuzz_opt.config.max_delay = static_cast<Time>(parse_size(arg, next()));
    } else if (arg == "--properties") {
      fuzz_opt.config.properties =
          static_cast<std::uint32_t>(parse_size(arg, next()));
    } else if (arg == "--padding-modules") {
      fuzz_opt.config.padding_modules =
          static_cast<std::uint32_t>(parse_size(arg, next()));
    } else if (arg == "--config") {
      const std::string path = next();
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
        return kExitRuntime;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      try {
        fuzz_opt.config = fuzz::GeneratorConfig::from_json(text);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitUsage;
      }
    } else if (arg == "--no-minimize") {
      fuzz_opt.minimize = false;
    } else if (arg == "--replay") {
      fuzz_replay = true;
    } else if (arg == "--socket") {
      serve_opt.socket_path = next();
    } else if (arg == "--cache") {
      serve_opt.cache_path = next();
    } else if (arg == "--max-cache-entries") {
      serve_opt.max_cache_entries = parse_size(arg, next());
    } else if (arg == "--heartbeat") {
      serve_opt.heartbeat_seconds = parse_double(arg, next());
    } else if (arg == "--portfolio") {
      serve_opt.portfolio = true;
    } else if (arg == "--compose") {
      serve_opt.compose = true;
    } else if (arg == "--ping") {
      serve_opt.ping = true;
    } else if (arg == "--stats") {
      serve_opt.stats = true;
    } else if (arg == "--metrics") {
      serve_opt.metrics = true;
    } else if (arg == "--shutdown") {
      serve_opt.shutdown = true;
    } else if (arg == "--vcd") {
      vcd = next();
    } else if (arg == "--signals") {
      signals = split_csv(next());
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  // --trace wraps the whole command: every worker thread created after
  // start_tracing() records spans, and the file is written even when the
  // command exits with a verdict or failure code.
  const bool tracing = !vopts.trace_path.empty();
  if (tracing) {
    obs::start_tracing();
    obs::set_thread_name("main");
  }

  auto dispatch = [&]() -> int {
    if (cmd == "verify" && !files.empty()) return cmd_verify(files, vopts);
    if (cmd == "suite" && !files.empty()) return cmd_suite(files, vopts);
    if (cmd == "portfolio" && !files.empty())
      return cmd_portfolio(files, vopts);
    if (cmd == "engines") return cmd_engines();
    if (cmd == "lint" && !files.empty()) return cmd_lint(files, vopts);
    if (cmd == "slice" && !files.empty()) return cmd_slice(files, vopts);
    if (cmd == "fuzz" && files.empty()) {
      fuzz_opt.seed = seed;
      if (!vopts.engines.empty()) fuzz_opt.engines = vopts.engines;
      if (vopts.jobs != 0) fuzz_opt.jobs = vopts.jobs;
      if (vopts.max_states != 0) fuzz_opt.max_states = vopts.max_states;
      fuzz_opt.max_seconds = vopts.timeout_seconds;
      return cmd_fuzz(std::move(fuzz_opt), fuzz_replay, vopts.json_path);
    }
    if (cmd == "simulate" && !files.empty())
      return cmd_simulate(files, events, seed, vcd, signals);
    if (cmd == "dot" && files.size() == 1) return cmd_dot(files[0]);
    if (cmd == "minimize" && files.size() == 1) return cmd_minimize(files[0]);
    if (cmd == "ipcmos") return cmd_ipcmos(vopts);
    if (cmd == "serve" && files.empty()) return cmd_serve(serve_opt, vopts);
    if (cmd == "client") return cmd_client(files, serve_opt, vopts);
    return usage();
  };

  int rc;
  try {
    rc = dispatch();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = kExitRuntime;
  }
  if (tracing) {
    if (obs::write_trace(vopts.trace_path))
      std::fprintf(stderr, "trace written to %s\n", vopts.trace_path.c_str());
    else
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   vopts.trace_path.c_str());
  }
  return rc;
}
